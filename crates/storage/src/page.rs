//! Slotted-page layout for B*-tree nodes.
//!
//! Two page kinds share a common header:
//!
//! ```text
//! offset  size  field
//! 0       1     page type (1 = leaf, 2 = inner)
//! 1       2     cell count (u16 LE)
//! 3       2     cell area start: lowest cell offset (u16 LE)
//! 5       4     leaf: next-leaf page id / inner: leftmost child (u32 LE)
//! 9       4     leaf: previous-leaf page id (u32 LE)
//! 13      2     leaf: common key prefix length (u16 LE)
//! 15      —     leaf: prefix bytes, then the slot array (u16 offsets);
//!               inner: slot array directly. Cells grow down from the end.
//! ```
//!
//! Leaf cell:  `[suffix_len u16][val_len u16][key suffix][value]`
//! Inner cell: `[key_len u16][key][child u32]`
//!
//! Leaves store only the key *suffix* after the page-wide common prefix —
//! the prefix compression the paper credits for shrinking stored SPLIDs to
//! 2–3 bytes on average.

use crate::pool::PageId;
use std::cmp::Ordering;

pub const HEADER: usize = 15;
pub const TYPE_LEAF: u8 = 1;
pub const TYPE_INNER: u8 = 2;

// ---- header accessors ------------------------------------------------

pub fn page_type(p: &[u8]) -> u8 {
    p[0]
}

pub fn count(p: &[u8]) -> usize {
    u16::from_le_bytes([p[1], p[2]]) as usize
}

fn set_count(p: &mut [u8], n: usize) {
    p[1..3].copy_from_slice(&(n as u16).to_le_bytes());
}

fn cell_start(p: &[u8]) -> usize {
    u16::from_le_bytes([p[3], p[4]]) as usize
}

fn set_cell_start(p: &mut [u8], off: usize) {
    p[3..5].copy_from_slice(&(off as u16).to_le_bytes());
}

/// Leaf: next leaf in the chain. Inner: leftmost child.
pub fn link(p: &[u8]) -> PageId {
    u32::from_le_bytes([p[5], p[6], p[7], p[8]])
}

pub fn set_link(p: &mut [u8], id: PageId) {
    p[5..9].copy_from_slice(&id.to_le_bytes());
}

/// Leaf: previous leaf in the chain.
pub fn prev_link(p: &[u8]) -> PageId {
    u32::from_le_bytes([p[9], p[10], p[11], p[12]])
}

pub fn set_prev_link(p: &mut [u8], id: PageId) {
    p[9..13].copy_from_slice(&id.to_le_bytes());
}

fn prefix_len(p: &[u8]) -> usize {
    u16::from_le_bytes([p[13], p[14]]) as usize
}

pub fn prefix(p: &[u8]) -> &[u8] {
    &p[HEADER..HEADER + prefix_len(p)]
}

fn slots_off(p: &[u8]) -> usize {
    match page_type(p) {
        TYPE_LEAF => HEADER + prefix_len(p),
        _ => HEADER,
    }
}

fn slot(p: &[u8], i: usize) -> usize {
    let off = slots_off(p) + i * 2;
    u16::from_le_bytes([p[off], p[off + 1]]) as usize
}

fn set_slot(p: &mut [u8], i: usize, cell: usize) {
    let off = slots_off(p) + i * 2;
    p[off..off + 2].copy_from_slice(&(cell as u16).to_le_bytes());
}

/// Free bytes between the slot array and the cell area.
pub fn free_space(p: &[u8]) -> usize {
    cell_start(p) - (slots_off(p) + count(p) * 2)
}

/// Bytes of payload currently stored (cells + slots + header + prefix) —
/// used for occupancy reporting.
pub fn used_bytes(p: &[u8]) -> usize {
    p.len() - free_space(p)
}

// ---- leaf pages --------------------------------------------------------

pub fn init_leaf(p: &mut [u8], prefix: &[u8], next: PageId, prev: PageId) {
    let len = p.len();
    p[0] = TYPE_LEAF;
    set_count(p, 0);
    set_cell_start(p, len);
    set_link(p, next);
    set_prev_link(p, prev);
    p[13..15].copy_from_slice(&(prefix.len() as u16).to_le_bytes());
    p[HEADER..HEADER + prefix.len()].copy_from_slice(prefix);
}

/// Key suffix and value of leaf cell `i`.
pub fn leaf_cell(p: &[u8], i: usize) -> (&[u8], &[u8]) {
    let off = slot(p, i);
    let slen = u16::from_le_bytes([p[off], p[off + 1]]) as usize;
    let vlen = u16::from_le_bytes([p[off + 2], p[off + 3]]) as usize;
    let suffix = &p[off + 4..off + 4 + slen];
    let val = &p[off + 4 + slen..off + 4 + slen + vlen];
    (suffix, val)
}

/// Full key of leaf cell `i` (prefix + suffix).
pub fn leaf_key(p: &[u8], i: usize) -> Vec<u8> {
    let (suffix, _) = leaf_cell(p, i);
    let mut k = Vec::with_capacity(prefix(p).len() + suffix.len());
    k.extend_from_slice(prefix(p));
    k.extend_from_slice(suffix);
    k
}

/// Compares a search key against `prefix ++ suffix` without materializing
/// the concatenation.
fn cmp_key(key: &[u8], prefix: &[u8], suffix: &[u8]) -> Ordering {
    let n = key.len().min(prefix.len());
    match key[..n].cmp(&prefix[..n]) {
        Ordering::Equal => {
            if key.len() < prefix.len() {
                Ordering::Less
            } else {
                key[prefix.len()..].cmp(suffix)
            }
        }
        ord => ord,
    }
}

/// Binary search in a leaf: `Ok(i)` if `key` is at slot `i`, `Err(i)` for
/// the insertion position.
pub fn leaf_search(p: &[u8], key: &[u8]) -> Result<usize, usize> {
    let pfx = prefix(p);
    let mut lo = 0usize;
    let mut hi = count(p);
    while lo < hi {
        let mid = (lo + hi) / 2;
        let (suffix, _) = leaf_cell(p, mid);
        match cmp_key(key, pfx, suffix) {
            Ordering::Equal => return Ok(mid),
            Ordering::Greater => lo = mid + 1,
            Ordering::Less => hi = mid,
        }
    }
    Err(lo)
}

/// Whether a leaf insert of `key`/`val` fits in place (key must share the
/// page prefix). Returns the required cell size on success.
pub fn leaf_fits(p: &[u8], key: &[u8], val: &[u8]) -> Option<usize> {
    let pfx = prefix(p);
    if !key.starts_with(pfx) {
        return None;
    }
    let cell = 4 + (key.len() - pfx.len()) + val.len();
    if free_space(p) >= cell + 2 {
        Some(cell)
    } else {
        None
    }
}

/// In-place leaf insert at slot position `i` (caller checked [`leaf_fits`]).
pub fn leaf_insert_at(p: &mut [u8], i: usize, key: &[u8], val: &[u8]) {
    let pfx_len = prefix(p).len();
    let suffix_start = pfx_len;
    let slen = key.len() - suffix_start;
    let cell = 4 + slen + val.len();
    let off = cell_start(p) - cell;
    p[off..off + 2].copy_from_slice(&(slen as u16).to_le_bytes());
    p[off + 2..off + 4].copy_from_slice(&(val.len() as u16).to_le_bytes());
    p[off + 4..off + 4 + slen].copy_from_slice(&key[suffix_start..]);
    p[off + 4 + slen..off + cell].copy_from_slice(val);
    set_cell_start(p, off);
    let n = count(p);
    // Shift slots [i..n) up by one.
    let base = slots_off(p);
    p.copy_within(base + i * 2..base + n * 2, base + i * 2 + 2);
    set_count(p, n + 1);
    set_slot(p, i, off);
}

/// Replaces the value of slot `i` in place when the new value fits in the
/// old cell footprint; returns false otherwise (caller rebuilds).
pub fn leaf_replace_val_at(p: &mut [u8], i: usize, val: &[u8]) -> bool {
    let off = slot(p, i);
    let slen = u16::from_le_bytes([p[off], p[off + 1]]) as usize;
    let vlen = u16::from_le_bytes([p[off + 2], p[off + 3]]) as usize;
    if val.len() > vlen {
        return false;
    }
    p[off + 2..off + 4].copy_from_slice(&(val.len() as u16).to_le_bytes());
    p[off + 4 + slen..off + 4 + slen + val.len()].copy_from_slice(val);
    true
}

/// Removes slot `i` (cell space is reclaimed only on rebuild — classic
/// slotted-page laziness; `leaf_entries` + rebuild compacts).
pub fn leaf_remove_at(p: &mut [u8], i: usize) {
    let n = count(p);
    let base = slots_off(p);
    p.copy_within(base + (i + 1) * 2..base + n * 2, base + i * 2);
    set_count(p, n - 1);
}

/// Decodes all (full key, value) pairs of a leaf.
pub fn leaf_entries(p: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..count(p))
        .map(|i| {
            let (_, v) = leaf_cell(p, i);
            (leaf_key(p, i), v.to_vec())
        })
        .collect()
}

/// Longest common prefix of a sorted entry run.
pub fn common_prefix(entries: &[(Vec<u8>, Vec<u8>)]) -> Vec<u8> {
    match entries {
        [] => Vec::new(),
        [(first, _), rest @ ..] => {
            let mut n = first.len();
            for (k, _) in rest {
                let m = first
                    .iter()
                    .zip(k.iter())
                    .take_while(|(a, b)| a == b)
                    .count();
                n = n.min(m);
            }
            first[..n].to_vec()
        }
    }
}

/// Rebuilds a leaf from sorted entries with a freshly computed prefix.
/// Caller guarantees the entries fit (see [`leaf_build_size`]).
pub fn leaf_rebuild(p: &mut [u8], entries: &[(Vec<u8>, Vec<u8>)], next: PageId, prev: PageId) {
    let pfx = common_prefix(entries);
    init_leaf(p, &pfx, next, prev);
    for (i, (k, v)) in entries.iter().enumerate() {
        debug_assert!(leaf_fits(p, k, v).is_some(), "rebuild overflow");
        leaf_insert_at(p, i, k, v);
    }
}

/// Bytes a rebuilt leaf would occupy for these entries.
pub fn leaf_build_size(entries: &[(Vec<u8>, Vec<u8>)]) -> usize {
    let pfx = common_prefix(entries);
    HEADER
        + pfx.len()
        + entries
            .iter()
            .map(|(k, v)| 2 + 4 + (k.len() - pfx.len()) + v.len())
            .sum::<usize>()
}

// ---- inner pages -------------------------------------------------------

pub fn init_inner(p: &mut [u8], leftmost: PageId) {
    let len = p.len();
    p[0] = TYPE_INNER;
    set_count(p, 0);
    set_cell_start(p, len);
    set_link(p, leftmost);
    set_prev_link(p, 0);
    p[13..15].copy_from_slice(&0u16.to_le_bytes());
}

/// Separator key and right-child of inner cell `i`.
pub fn inner_cell(p: &[u8], i: usize) -> (&[u8], PageId) {
    let off = slot(p, i);
    let klen = u16::from_le_bytes([p[off], p[off + 1]]) as usize;
    let key = &p[off + 2..off + 2 + klen];
    let c = off + 2 + klen;
    let child = u32::from_le_bytes([p[c], p[c + 1], p[c + 2], p[c + 3]]);
    (key, child)
}

/// Child page to descend into for `key`: the child of the greatest
/// separator `<= key`, or the leftmost child. Returns (child, separator
/// slot index or None for leftmost).
pub fn inner_descend(p: &[u8], key: &[u8]) -> (PageId, Option<usize>) {
    let n = count(p);
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let (sep, _) = inner_cell(p, mid);
        if sep <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo == 0 {
        (link(p), None)
    } else {
        (inner_cell(p, lo - 1).1, Some(lo - 1))
    }
}

/// Whether a separator insert fits.
pub fn inner_fits(p: &[u8], key: &[u8]) -> bool {
    free_space(p) >= 2 + 2 + key.len() + 4
}

/// Inserts separator `key` → `child` keeping separator order.
pub fn inner_insert(p: &mut [u8], key: &[u8], child: PageId) {
    let n = count(p);
    let mut i = 0;
    while i < n && inner_cell(p, i).0 < key {
        i += 1;
    }
    let cell = 2 + key.len() + 4;
    let off = cell_start(p) - cell;
    p[off..off + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
    p[off + 2..off + 2 + key.len()].copy_from_slice(key);
    p[off + 2 + key.len()..off + cell].copy_from_slice(&child.to_le_bytes());
    set_cell_start(p, off);
    let base = slots_off(p);
    p.copy_within(base + i * 2..base + n * 2, base + i * 2 + 2);
    set_count(p, n + 1);
    set_slot(p, i, off);
}

/// Removes separator slot `i`.
pub fn inner_remove_at(p: &mut [u8], i: usize) {
    let n = count(p);
    let base = slots_off(p);
    p.copy_within(base + (i + 1) * 2..base + n * 2, base + i * 2);
    set_count(p, n - 1);
}

/// All (separator, child) pairs.
pub fn inner_entries(p: &[u8]) -> Vec<(Vec<u8>, PageId)> {
    (0..count(p))
        .map(|i| {
            let (k, c) = inner_cell(p, i);
            (k.to_vec(), c)
        })
        .collect()
}

/// Rebuilds an inner page from a leftmost child and sorted separators.
pub fn inner_rebuild(p: &mut [u8], leftmost: PageId, entries: &[(Vec<u8>, PageId)]) {
    init_inner(p, leftmost);
    for (k, c) in entries {
        debug_assert!(inner_fits(p, k));
        inner_insert(p, k, *c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Vec<u8> {
        vec![0u8; 512]
    }

    #[test]
    fn leaf_insert_search_remove() {
        let mut p = page();
        init_leaf(&mut p, b"xy", 7, 9);
        assert_eq!(link(&p), 7);
        assert_eq!(prev_link(&p), 9);
        for (i, k) in [b"xya", b"xyc", b"xye"].iter().enumerate() {
            let pos = leaf_search(&p, *k).unwrap_err();
            assert_eq!(pos, i);
            leaf_insert_at(&mut p, pos, *k, &[i as u8]);
        }
        assert_eq!(count(&p), 3);
        assert_eq!(leaf_search(&p, b"xyc"), Ok(1));
        assert_eq!(leaf_search(&p, b"xyb"), Err(1));
        assert_eq!(leaf_search(&p, b"xx"), Err(0));
        assert_eq!(leaf_search(&p, b"xz"), Err(3));
        let (suffix, val) = leaf_cell(&p, 1);
        assert_eq!(suffix, b"c");
        assert_eq!(val, &[1]);
        assert_eq!(leaf_key(&p, 2), b"xye");
        leaf_remove_at(&mut p, 1);
        assert_eq!(count(&p), 2);
        assert_eq!(leaf_search(&p, b"xyc"), Err(1));
    }

    #[test]
    fn leaf_value_replace() {
        let mut p = page();
        init_leaf(&mut p, b"", 0, 0);
        leaf_insert_at(&mut p, 0, b"k", b"hello");
        assert!(leaf_replace_val_at(&mut p, 0, b"hi"));
        assert_eq!(leaf_cell(&p, 0).1, b"hi");
        assert!(!leaf_replace_val_at(&mut p, 0, b"toolongnow"));
    }

    #[test]
    fn leaf_rebuild_computes_prefix() {
        let mut p = page();
        let entries = vec![
            (b"abc1".to_vec(), b"v1".to_vec()),
            (b"abc2".to_vec(), b"v2".to_vec()),
            (b"abd".to_vec(), b"v3".to_vec()),
        ];
        leaf_rebuild(&mut p, &entries, 0, 0);
        assert_eq!(prefix(&p), b"ab");
        assert_eq!(leaf_entries(&p), entries);
        assert!(used_bytes(&p) <= leaf_build_size(&entries) + 3 * 2);
    }

    #[test]
    fn inner_descend_picks_ranges() {
        let mut p = page();
        init_inner(&mut p, 10);
        inner_insert(&mut p, b"m", 20);
        inner_insert(&mut p, b"t", 30);
        assert_eq!(inner_descend(&p, b"a"), (10, None));
        assert_eq!(inner_descend(&p, b"m"), (20, Some(0)));
        assert_eq!(inner_descend(&p, b"p"), (20, Some(0)));
        assert_eq!(inner_descend(&p, b"t"), (30, Some(1)));
        assert_eq!(inner_descend(&p, b"z"), (30, Some(1)));
        inner_remove_at(&mut p, 0);
        assert_eq!(inner_descend(&p, b"p"), (10, None));
    }

    #[test]
    fn empty_key_and_value_edge_cases() {
        let mut p = page();
        init_leaf(&mut p, b"", 0, 0);
        leaf_insert_at(&mut p, 0, b"", b"");
        assert_eq!(leaf_search(&p, b""), Ok(0));
        assert_eq!(leaf_cell(&p, 0), (&b""[..], &b""[..]));
    }
}
