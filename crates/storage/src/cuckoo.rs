//! Cuckoo filter: a compact negative-lookup cache for index probes.
//!
//! A probe for a key that was never inserted answers "absent" with high
//! probability, letting the node manager skip a whole B*-tree descent
//! (and its page faults) for absent element names and unknown ID values.
//! Unlike a Bloom filter, entries can be deleted, which the churn of
//! rename/delete workloads needs.
//!
//! Standard partial-key cuckoo hashing (Fan et al.): 16-bit
//! fingerprints, 4-way buckets, two candidate buckets per key related by
//! `i2 = i1 ^ h(fingerprint)`, bounded relocation on insert. The filter
//! **never answers a false "absent"** for a present key: if an insert's
//! relocation chain exhausts its kick budget the filter latches into an
//! *overflowed* state where every probe answers "maybe present" —
//! degraded to useless, never to wrong.

/// Maximum relocations one insert may attempt before the filter latches
/// overflowed.
const MAX_KICKS: u32 = 500;

/// Slots per bucket.
const BUCKET_SLOTS: usize = 4;

/// 64-bit mix (splitmix64 finalizer) — the filter's hash function.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the key bytes, then mixed — cheap and stable.
#[inline]
fn hash_key(key: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    mix64(h)
}

/// A deletable approximate-membership filter over byte-string keys.
#[derive(Debug, Clone)]
pub struct CuckooFilter {
    /// `0` marks an empty slot; fingerprints are always nonzero.
    buckets: Vec<[u16; BUCKET_SLOTS]>,
    mask: usize,
    len: usize,
    /// Deterministic relocation-choice state (seeded xorshift).
    rng: u64,
    overflowed: bool,
}

impl CuckooFilter {
    /// A filter sized for about `capacity` entries (rounded up to a
    /// power-of-two bucket count at ~4 slots per bucket, so the load
    /// factor stays in cuckoo-friendly territory).
    pub fn with_capacity(capacity: usize) -> CuckooFilter {
        let buckets = (capacity.max(16) / BUCKET_SLOTS + 1)
            .next_power_of_two()
            .max(2);
        CuckooFilter {
            buckets: vec![[0; BUCKET_SLOTS]; buckets],
            mask: buckets - 1,
            len: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
            overflowed: false,
        }
    }

    /// Entries currently stored (not counting any lost to overflow).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True once an insert has exhausted its relocation budget; from
    /// then on every [`contains`](CuckooFilter::contains) answers `true`
    /// (no false negatives, ever).
    pub fn is_overflowed(&self) -> bool {
        self.overflowed
    }

    fn fingerprint_and_bucket(&self, key: &[u8]) -> (u16, usize) {
        let h = hash_key(key);
        // Fingerprint from the high bits, never zero (zero = empty slot).
        let fp = ((h >> 48) as u16).max(1);
        (fp, (h as usize) & self.mask)
    }

    fn alt_bucket(&self, fp: u16, bucket: usize) -> usize {
        bucket ^ (mix64(fp as u64) as usize & self.mask)
    }

    fn place(&mut self, fp: u16, bucket: usize) -> bool {
        for slot in self.buckets[bucket].iter_mut() {
            if *slot == 0 {
                *slot = fp;
                return true;
            }
        }
        false
    }

    /// Inserts a key. Returns `false` (after latching overflowed) when
    /// the relocation chain exhausts its budget; the caller may keep
    /// using the filter — probes just stop filtering.
    pub fn insert(&mut self, key: &[u8]) -> bool {
        let (mut fp, b1) = self.fingerprint_and_bucket(key);
        let b2 = self.alt_bucket(fp, b1);
        if self.place(fp, b1) || self.place(fp, b2) {
            self.len += 1;
            return true;
        }
        // Relocate: evict a random slot of a random candidate bucket and
        // re-home the displaced fingerprint, up to MAX_KICKS times.
        let mut bucket = if self.next_rand() & 1 == 0 { b1 } else { b2 };
        for _ in 0..MAX_KICKS {
            let slot = (self.next_rand() as usize) % BUCKET_SLOTS;
            std::mem::swap(&mut fp, &mut self.buckets[bucket][slot]);
            bucket = self.alt_bucket(fp, bucket);
            if self.place(fp, bucket) {
                self.len += 1;
                return true;
            }
        }
        self.overflowed = true;
        false
    }

    /// Removes one copy of a key's fingerprint. Returns whether one was
    /// found. Deleting keys that were never inserted is unsupported (as
    /// in any cuckoo filter, it could evict an unrelated key's
    /// fingerprint) — callers refcount to keep insert/delete balanced.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        let (fp, b1) = self.fingerprint_and_bucket(key);
        let b2 = self.alt_bucket(fp, b1);
        for bucket in [b1, b2] {
            for slot in self.buckets[bucket].iter_mut() {
                if *slot == fp {
                    *slot = 0;
                    self.len = self.len.saturating_sub(1);
                    return true;
                }
            }
        }
        false
    }

    /// Whether the key *may* be present. `false` is definitive (the key
    /// was never inserted, or was deleted); `true` may be a false
    /// positive at the fingerprint collision rate (~2·4/2^16 per probe),
    /// and is always returned once the filter overflowed.
    pub fn contains(&self, key: &[u8]) -> bool {
        if self.overflowed {
            return true;
        }
        let (fp, b1) = self.fingerprint_and_bucket(key);
        let b2 = self.alt_bucket(fp, b1);
        self.buckets[b1].contains(&fp) || self.buckets[b2].contains(&fp)
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: deterministic, no external dependency.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        format!("element-name-{i}").into_bytes()
    }

    #[test]
    fn present_keys_are_always_found() {
        let mut f = CuckooFilter::with_capacity(1024);
        for i in 0..800 {
            assert!(f.insert(&key(i)), "insert {i} failed below capacity");
        }
        for i in 0..800 {
            assert!(f.contains(&key(i)), "false negative for {i}");
        }
        assert_eq!(f.len(), 800);
    }

    #[test]
    fn deleted_keys_become_absent_again() {
        let mut f = CuckooFilter::with_capacity(256);
        for i in 0..100 {
            f.insert(&key(i));
        }
        for i in 0..50 {
            assert!(f.delete(&key(i)));
        }
        // The surviving half still answers present.
        for i in 50..100 {
            assert!(f.contains(&key(i)));
        }
        assert_eq!(f.len(), 50);
    }

    #[test]
    fn false_positive_rate_is_small_and_absent_probes_mostly_miss() {
        let mut f = CuckooFilter::with_capacity(4096);
        for i in 0..3000 {
            f.insert(&key(i));
        }
        let fp = (10_000..60_000).filter(|&i| f.contains(&key(i))).count();
        // 16-bit fingerprints, 2 buckets x 4 slots: expect ~0.012%.
        assert!(
            fp < 50,
            "false-positive rate too high: {fp}/50000 absent probes matched"
        );
    }

    #[test]
    fn overflow_latches_to_no_false_negatives() {
        // Tiny filter, force overflow.
        let mut f = CuckooFilter::with_capacity(16);
        let mut inserted = Vec::new();
        for i in 0..10_000 {
            if !f.insert(&key(i)) {
                break;
            }
            inserted.push(i);
        }
        assert!(f.is_overflowed(), "expected overflow on a tiny filter");
        // Every successfully inserted key still answers present.
        for &i in &inserted {
            assert!(f.contains(&key(i)));
        }
        // And so does everything else — degraded, never wrong.
        assert!(f.contains(&key(999_999)));
    }

    #[test]
    fn churn_keeps_the_filter_coherent() {
        // Insert/delete waves (rename-heavy workload shape): after each
        // wave, live keys answer present and the dead majority answer
        // absent at the fingerprint FP rate.
        let mut f = CuckooFilter::with_capacity(2048);
        for wave in 0u64..20 {
            for i in 0..500 {
                assert!(f.insert(&key(wave * 1000 + i)));
            }
            for i in 0..500 {
                assert!(f.delete(&key(wave * 1000 + i)));
            }
        }
        assert_eq!(f.len(), 0);
        assert!(!f.is_overflowed());
        let ghosts = (0u64..20)
            .flat_map(|w| (0..500).map(move |i| w * 1000 + i))
            .filter(|&i| f.contains(&key(i)))
            .count();
        assert_eq!(ghosts, 0, "deleted keys must read absent after churn");
    }
}
