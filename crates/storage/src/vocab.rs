//! The vocabulary: tag/attribute names ↔ ≤ 2-byte surrogates.
//!
//! "Stored tree nodes are additionally compressed by a vocabulary. Instead
//! of storing their names, surrogates (<= 2 bytes) are used to identify
//! them" (§3.2). Name sets of real documents are tiny (the bib document
//! has ~25 distinct names), so a `u16` surrogate is ample.

use parking_lot::RwLock;
use std::collections::HashMap;

/// A vocabulary surrogate for an element or attribute name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VocId(pub u16);

impl VocId {
    /// Big-endian byte form, used as an index-key component.
    pub fn to_bytes(self) -> [u8; 2] {
        self.0.to_be_bytes()
    }

    /// Parses the big-endian byte form.
    pub fn from_bytes(b: [u8; 2]) -> Self {
        VocId(u16::from_be_bytes(b))
    }
}

#[derive(Debug, Default)]
struct Inner {
    by_name: HashMap<String, VocId>,
    by_id: Vec<String>,
}

/// Thread-safe interning table of names.
#[derive(Debug, Default)]
pub struct Vocabulary {
    inner: RwLock<Inner>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Interns `name`, returning its (possibly fresh) surrogate.
    ///
    /// # Panics
    /// If more than `u16::MAX + 1` distinct names are interned.
    pub fn intern(&self, name: &str) -> VocId {
        if let Some(id) = self.inner.read().by_name.get(name) {
            return *id;
        }
        let mut g = self.inner.write();
        if let Some(id) = g.by_name.get(name) {
            return *id;
        }
        let id = VocId(u16::try_from(g.by_id.len()).expect("vocabulary overflow"));
        g.by_id.push(name.to_string());
        g.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up a surrogate without interning.
    pub fn lookup(&self, name: &str) -> Option<VocId> {
        self.inner.read().by_name.get(name).copied()
    }

    /// Resolves a surrogate back to its name.
    pub fn resolve(&self, id: VocId) -> Option<String> {
        self.inner.read().by_id.get(id.0 as usize).cloned()
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.inner.read().by_id.len()
    }

    /// `true` when no names are interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let v = Vocabulary::new();
        let a = v.intern("book");
        let b = v.intern("title");
        let a2 = v.intern("book");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
        assert_eq!(v.resolve(a).as_deref(), Some("book"));
        assert_eq!(v.lookup("title"), Some(b));
        assert_eq!(v.lookup("missing"), None);
        assert_eq!(v.resolve(VocId(99)), None);
    }

    #[test]
    fn byte_round_trip() {
        let id = VocId(0x1234);
        assert_eq!(VocId::from_bytes(id.to_bytes()), id);
        // Big-endian ordering matches numeric ordering for index keys.
        assert!(VocId(1).to_bytes() < VocId(256).to_bytes());
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let v = std::sync::Arc::new(Vocabulary::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let v = v.clone();
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .map(|i| v.intern(&format!("name-{}", i % 10)))
                    .collect::<Vec<_>>()
            }));
        }
        let results: Vec<Vec<VocId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(v.len(), 10);
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }
}
