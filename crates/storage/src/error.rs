//! Storage-layer errors.

use std::fmt;

/// Errors surfaced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Key longer than the per-page maximum (the paper notes the analogous
    /// B-tree restriction: "key length < 128B in B-trees").
    KeyTooLarge {
        /// Offending key length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// Value longer than the per-page maximum cell payload.
    ValueTooLarge {
        /// Offending value length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::KeyTooLarge { len, max } => {
                write!(f, "key of {len} bytes exceeds maximum of {max}")
            }
            StorageError::ValueTooLarge { len, max } => {
                write!(f, "value of {len} bytes exceeds maximum of {max}")
            }
        }
    }
}

impl std::error::Error for StorageError {}
