//! The page pool: document container pages plus access statistics.
//!
//! In the paper's testbed, pages live in DB buffers over an IDE disk and
//! "references to external memory for locking purposes should be avoided".
//! Here the pool is the in-memory stand-in for buffer + disk: every page
//! read/write is counted, so experiments can report page-access counts
//! where the paper reports I/O-bound execution times (see DESIGN.md).
//!
//! Since the WAL landed the pool is a real (if simulated) buffer manager:
//! each page frame carries a `page_lsn` (the LSN of the log record
//! covering its latest mutation), a dirty bit, a pin count, and a
//! residency bit. The pool runs **steal/no-force**: dirty pages may leave
//! the buffer before commit — but only once the covering log record is
//! durable ([`PagePool::flush_dirty`] enforces the WAL rule) — and commit
//! never forces data pages, only the log. Eviction under a
//! `max_resident` budget picks clean, unpinned frames in LRU order;
//! evicted frames keep their bytes (they model pages on disk) and fault
//! back in as buffer misses.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use xtc_failpoint::ScopeId;
use xtc_obs::{CostKind, EventKind, Obs};

/// Identifier of a page inside a [`PagePool`]. `0` is reserved as "no page"
/// (niche for leaf-chain terminators).
pub type PageId = u32;

/// The reserved null page id.
pub const NO_PAGE: PageId = 0;

/// In-site retry budget for transient injected I/O faults.
const IO_ATTEMPTS: u32 = 4;
/// Base backoff between injected-fault retries (grows exponentially).
const IO_BACKOFF_BASE: Duration = Duration::from_micros(50);

/// Shared counters of logical page accesses.
///
/// Cloned handles observe the same counters; the lock-protocol experiments
/// read them to compare storage work across protocols (e.g. the *-2PL
/// group's IDX subtree scans in CLUSTER2). The handle also carries the two
/// ambient signals the WAL integration needs: the LSN to stamp on dirtied
/// pages ([`StorageStats::set_current_lsn`]) and the poison flag a crash
/// failpoint raises from deep inside a page split.
#[derive(Debug, Default, Clone)]
pub struct StorageStats {
    inner: Arc<StatsInner>,
}

#[derive(Debug, Default)]
struct StatsInner {
    page_reads: AtomicU64,
    page_writes: AtomicU64,
    page_allocs: AtomicU64,
    page_frees: AtomicU64,
    buffer_hits: AtomicU64,
    buffer_misses: AtomicU64,
    page_flushes: AtomicU64,
    evictions: AtomicU64,
    evict_blocked: AtomicU64,
    /// Write-backs the `pool.evict_write` fault site failed permanently
    /// (the page stayed dirty; a later flush retries it).
    flush_faults: AtomicU64,
    /// LSN stamped on pages dirtied by the mutation in flight (set by the
    /// transaction layer under its log mutex; `0` = no WAL).
    current_lsn: AtomicU64,
    /// Raised by a crash failpoint at a site with no error path (e.g.
    /// mid-split); the transaction layer checks it after every mutation.
    poisoned: AtomicBool,
    /// Observability handle: page reads charge their simulated latency to
    /// the virtual clock here, and page events go to the trace (if on).
    obs: Obs,
    /// Failpoint scope of the owning engine: storage fault sites
    /// (`store.page_read`, `store.page_read_io`, `pool.evict_write`,
    /// `btree.split`) evaluate in it, so chaos can fault one document in
    /// a catalog without touching its neighbors. Defaults to
    /// [`xtc_failpoint::GLOBAL`].
    scope: ScopeId,
}

impl StorageStats {
    /// Stats wired to an observability handle: page accesses charge the
    /// virtual clock and (when tracing) emit page events.
    pub fn with_obs(obs: Obs) -> StorageStats {
        Self::with_obs_scoped(obs, xtc_failpoint::GLOBAL)
    }

    /// Stats wired to an observability handle and an engine failpoint
    /// scope (see [`StorageStats::failpoint_scope`]).
    pub fn with_obs_scoped(obs: Obs, scope: ScopeId) -> StorageStats {
        StorageStats {
            inner: Arc::new(StatsInner {
                obs,
                scope,
                ..StatsInner::default()
            }),
        }
    }

    /// The observability handle these stats report into.
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// The failpoint scope storage fault sites evaluate in.
    pub fn failpoint_scope(&self) -> ScopeId {
        self.inner.scope
    }

    /// Pages read (pinned for read access).
    pub fn page_reads(&self) -> u64 {
        self.inner.page_reads.load(Ordering::Relaxed)
    }

    /// Pages written (pinned for write access).
    pub fn page_writes(&self) -> u64 {
        self.inner.page_writes.load(Ordering::Relaxed)
    }

    /// Pages allocated over the pool's lifetime.
    pub fn page_allocs(&self) -> u64 {
        self.inner.page_allocs.load(Ordering::Relaxed)
    }

    /// Pages returned to the freelist.
    pub fn page_frees(&self) -> u64 {
        self.inner.page_frees.load(Ordering::Relaxed)
    }

    /// Sets the LSN that subsequent page writes stamp as their
    /// `page_lsn`. The transaction layer calls this (under its log mutex)
    /// with the LSN of the redo record covering the mutation.
    pub fn set_current_lsn(&self, lsn: u64) {
        self.inner.current_lsn.store(lsn, Ordering::Relaxed);
    }

    /// The LSN currently stamped on dirtied pages.
    pub fn current_lsn(&self) -> u64 {
        self.inner.current_lsn.load(Ordering::Relaxed)
    }

    /// Marks the storage layer as crashed-in-place (a failpoint fired at
    /// a site with no error path). The engine checks this after each
    /// mutation and converts it into a WAL crash.
    pub fn poison(&self) {
        self.inner.poisoned.store(true, Ordering::Relaxed);
    }

    /// Whether [`StorageStats::poison`] was called.
    pub fn is_poisoned(&self) -> bool {
        self.inner.poisoned.load(Ordering::Relaxed)
    }

    pub(crate) fn count_read(&self) {
        self.inner.page_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_write(&self) {
        self.inner.page_writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_alloc(&self) {
        self.inner.page_allocs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_free(&self) {
        self.inner.page_frees.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_hit(&self) {
        self.inner.buffer_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_miss(&self) {
        self.inner.buffer_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_flush(&self) {
        self.inner.page_flushes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_eviction(&self) {
        self.inner.evictions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_evict_blocked(&self) {
        self.inner.evict_blocked.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_flush_fault(&self) {
        self.inner.flush_faults.fetch_add(1, Ordering::Relaxed);
    }
}

/// Snapshot of one pool's buffer-manager state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Accesses that found the page resident.
    pub hits: u64,
    /// Accesses that faulted the page in.
    pub misses: u64,
    /// Dirty pages written back by [`PagePool::flush_dirty`].
    pub flushes: u64,
    /// Frames evicted under the residency budget.
    pub evictions: u64,
    /// Times eviction found no clean, unpinned victim.
    pub evict_blocked: u64,
    /// Write-backs that failed permanently at the `pool.evict_write`
    /// fault site (the page stayed dirty).
    pub flush_faults: u64,
    /// Currently dirty pages (mutated since their last flush).
    pub dirty: usize,
    /// Currently resident pages.
    pub resident: usize,
    /// Live (allocated, not freed) pages.
    pub live: usize,
}

/// One buffered page: its bytes plus the buffer-manager state the WAL
/// integration needs. The bytes persist across eviction — an evicted
/// frame models a page that only exists on disk.
#[derive(Debug)]
struct Frame {
    data: Box<[u8]>,
    /// LSN of the log record covering the latest mutation (`0` = never
    /// dirtied under a WAL).
    page_lsn: u64,
    /// Mutated since the last flush.
    dirty: bool,
    /// Pinned frames (e.g. the tree root) are never evicted.
    pins: u32,
    /// In the buffer? Atomic because reads (`&self`) fault pages in.
    resident: AtomicBool,
    /// LRU clock value of the last access.
    last_use: AtomicU64,
}

/// A pool of fixed-size pages with a freelist and (optionally) a bounded
/// buffer. Not itself thread-safe: the owning B-tree wraps it (together
/// with the tree root) in its latch.
#[derive(Debug)]
pub struct PagePool {
    page_size: usize,
    frames: Vec<Option<Frame>>,
    free: Vec<PageId>,
    stats: StorageStats,
    /// Simulated per-read latency (spin-waited) — the stand-in for the
    /// paper's disk accesses; zero by default.
    read_latency: Duration,
    /// Residency budget; `None` = unbounded (every page stays resident).
    max_resident: Option<usize>,
    /// Currently resident frames (atomic: reads fault pages in).
    resident: AtomicUsize,
    /// LRU clock.
    tick: AtomicU64,
}

impl PagePool {
    /// Creates an empty pool of `page_size`-byte pages.
    pub fn new(page_size: usize, stats: StorageStats) -> Self {
        Self::with_latency(page_size, stats, Duration::ZERO)
    }

    /// Creates a pool whose reads spin-wait `read_latency` each —
    /// converting page-access counts into wall-clock time the way the
    /// paper's IDE disk did (see DESIGN.md substitutions and CLUSTER2).
    pub fn with_latency(page_size: usize, stats: StorageStats, read_latency: Duration) -> Self {
        Self::with_budget(page_size, stats, read_latency, None)
    }

    /// Creates a pool with a residency budget: at most `max_resident`
    /// frames stay buffered; the excess is evicted clean-LRU-first.
    pub fn with_budget(
        page_size: usize,
        stats: StorageStats,
        read_latency: Duration,
        max_resident: Option<usize>,
    ) -> Self {
        PagePool {
            page_size,
            frames: vec![None], // index 0 unused (NO_PAGE)
            free: Vec::new(),
            stats,
            read_latency,
            max_resident,
            resident: AtomicUsize::new(0),
            tick: AtomicU64::new(0),
        }
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Allocates a zeroed page (resident, clean).
    pub fn alloc(&mut self) -> PageId {
        self.evict_to_budget(1);
        self.stats.count_alloc();
        let frame = Frame {
            data: vec![0u8; self.page_size].into_boxed_slice(),
            page_lsn: 0,
            dirty: false,
            pins: 0,
            resident: AtomicBool::new(true),
            last_use: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed)),
        };
        self.resident.fetch_add(1, Ordering::Relaxed);
        if let Some(id) = self.free.pop() {
            self.frames[id as usize] = Some(frame);
            id
        } else {
            self.frames.push(Some(frame));
            (self.frames.len() - 1) as PageId
        }
    }

    /// Frees a page back to the pool.
    pub fn free(&mut self, id: PageId) {
        let frame = self.frames[id as usize]
            .take()
            .expect("double free of page");
        if frame.resident.load(Ordering::Relaxed) {
            self.resident.fetch_sub(1, Ordering::Relaxed);
        }
        self.stats.count_free();
        self.free.push(id);
    }

    /// Touches a frame's access metadata: bumps the LRU clock and counts
    /// a buffer hit or (fault-in) miss.
    fn touch(&self, frame: &Frame) {
        frame
            .last_use
            .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
        if frame.resident.swap(true, Ordering::Relaxed) {
            self.stats.count_hit();
        } else {
            self.stats.count_miss();
            self.resident.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Read access to a page (counted; spin-waits the configured
    /// simulated latency). Faults the page in if it was evicted.
    pub fn read(&self, id: PageId) -> &[u8] {
        self.stats.count_read();
        // Virtual time: a read costs its *configured* latency — the
        // deterministic simulated I/O the paper's figures argue about —
        // regardless of how long the spin-wait below takes in wall time.
        let obs = self.stats.obs();
        obs.charge(CostKind::PageRead, self.read_latency.as_micros() as u64);
        obs.record(EventKind::PageRead {
            page: u64::from(id),
        });
        // Chaos-test hook: page reads have no error path, so an armed
        // `Error` action degrades to a no-op and only `Delay` injects.
        xtc_failpoint::fire_delay_in(self.stats.failpoint_scope(), "store.page_read");
        // Fault site `store.page_read_io` models the read's device op:
        // transient faults are absorbed in-site with backoff; a permanent
        // fault poisons the engine (the transaction layer converts that
        // into an abort or a WAL crash — never a panic) and the stale
        // in-memory bytes are returned so in-flight readers can drain.
        match xtc_failpoint::eval_io_in(
            self.stats.failpoint_scope(),
            "store.page_read_io",
            IO_ATTEMPTS,
            IO_BACKOFF_BASE,
        ) {
            xtc_failpoint::IoFault::Ok => {}
            xtc_failpoint::IoFault::Transient { retries } => {
                if retries > 0 {
                    let slept =
                        IO_BACKOFF_BASE.as_micros() as u64 * ((1u64 << retries.min(16)) - 1);
                    obs.charge(CostKind::RetryBackoff, slept);
                }
            }
            xtc_failpoint::IoFault::Permanent => self.stats.poison(),
        }
        if !self.read_latency.is_zero() {
            let until = std::time::Instant::now() + self.read_latency;
            while std::time::Instant::now() < until {
                std::hint::spin_loop();
            }
        }
        let frame = self.frames[id as usize]
            .as_ref()
            .expect("read of freed page");
        self.touch(frame);
        &frame.data
    }

    /// Write access to a page (counted). Marks the frame dirty and stamps
    /// it with the ambient LSN ([`StorageStats::set_current_lsn`]) — the
    /// WAL rule's bookkeeping.
    pub fn write(&mut self, id: PageId) -> &mut [u8] {
        self.evict_to_budget(0);
        self.stats.count_write();
        self.stats.obs().record(EventKind::PageWrite {
            page: u64::from(id),
        });
        let lsn = self.stats.current_lsn();
        let frame = self.frames[id as usize]
            .as_mut()
            .expect("write of freed page");
        frame
            .last_use
            .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
        if !frame.resident.swap(true, Ordering::Relaxed) {
            self.stats.count_miss();
            self.resident.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.count_hit();
        }
        frame.dirty = true;
        if lsn > frame.page_lsn {
            frame.page_lsn = lsn;
        }
        &mut frame.data
    }

    /// Pins a page: it will not be evicted until unpinned.
    pub fn pin(&mut self, id: PageId) {
        if let Some(frame) = self.frames[id as usize].as_mut() {
            frame.pins += 1;
        }
    }

    /// Releases one pin.
    pub fn unpin(&mut self, id: PageId) {
        if let Some(frame) = self.frames[id as usize].as_mut() {
            frame.pins = frame.pins.saturating_sub(1);
        }
    }

    /// Evicts clean, unpinned frames (LRU first) until the resident count
    /// fits the budget with `headroom` slots to spare. Dirty and pinned
    /// frames are never victims — a dirty page may cover log records that
    /// are not durable yet; evicting it would break the WAL rule.
    fn evict_to_budget(&mut self, headroom: usize) {
        let Some(max) = self.max_resident else {
            return;
        };
        let max = max.saturating_sub(headroom).max(1);
        while self.resident.load(Ordering::Relaxed) > max {
            let victim = self
                .frames
                .iter()
                .enumerate()
                .filter_map(|(i, f)| f.as_ref().map(|f| (i, f)))
                .filter(|(_, f)| f.resident.load(Ordering::Relaxed) && !f.dirty && f.pins == 0)
                .min_by_key(|(_, f)| f.last_use.load(Ordering::Relaxed))
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    let frame = self.frames[i].as_mut().unwrap();
                    frame.resident.store(false, Ordering::Relaxed);
                    self.resident.fetch_sub(1, Ordering::Relaxed);
                    self.stats.count_eviction();
                    self.stats.obs().record(EventKind::PageEvict { page: i as u64 });
                }
                None => {
                    // Everything resident is dirty or pinned; the buffer
                    // must overcommit until a flush cleans pages.
                    self.stats.count_evict_blocked();
                    return;
                }
            }
        }
    }

    /// Writes back every dirty page whose covering log record is durable
    /// (`page_lsn <= durable_lsn`) and returns how many were flushed.
    /// Pages dirtied past `durable_lsn` stay dirty — flushing them would
    /// violate the WAL rule. With `durable_lsn == u64::MAX` this is an
    /// unconditional flush (no-WAL shutdown).
    pub fn flush_dirty(&mut self, durable_lsn: u64) -> usize {
        let mut flushed = 0;
        for frame in self.frames.iter_mut().flatten() {
            if frame.dirty && frame.page_lsn <= durable_lsn {
                // Fault site `pool.evict_write` models the write-back's
                // device op. A permanent fault leaves the page dirty —
                // harmless under the WAL rule (the covering log record
                // is durable; a later flush simply retries) — and is
                // counted so chaos reports can assert it happened.
                match xtc_failpoint::eval_io_in(
                    self.stats.failpoint_scope(),
                    "pool.evict_write",
                    IO_ATTEMPTS,
                    IO_BACKOFF_BASE,
                ) {
                    xtc_failpoint::IoFault::Permanent => {
                        self.stats.count_flush_fault();
                        continue;
                    }
                    xtc_failpoint::IoFault::Transient { retries } => {
                        if retries > 0 {
                            let slept = IO_BACKOFF_BASE.as_micros() as u64
                                * ((1u64 << retries.min(16)) - 1);
                            self.stats.obs().charge(CostKind::RetryBackoff, slept);
                        }
                    }
                    xtc_failpoint::IoFault::Ok => {}
                }
                frame.dirty = false;
                self.stats.count_flush();
                flushed += 1;
            }
        }
        flushed
    }

    /// Number of currently dirty pages.
    pub fn dirty_pages(&self) -> usize {
        self.frames
            .iter()
            .flatten()
            .filter(|f| f.dirty)
            .count()
    }

    /// Number of live (allocated, not freed) pages.
    pub fn live_pages(&self) -> usize {
        self.frames.iter().filter(|p| p.is_some()).count()
    }

    /// Buffer-manager snapshot for this pool.
    pub fn pool_stats(&self) -> PoolStats {
        PoolStats {
            hits: self.stats.inner.buffer_hits.load(Ordering::Relaxed),
            misses: self.stats.inner.buffer_misses.load(Ordering::Relaxed),
            flushes: self.stats.inner.page_flushes.load(Ordering::Relaxed),
            evictions: self.stats.inner.evictions.load(Ordering::Relaxed),
            evict_blocked: self.stats.inner.evict_blocked.load(Ordering::Relaxed),
            flush_faults: self.stats.inner.flush_faults.load(Ordering::Relaxed),
            dirty: self.dirty_pages(),
            resident: self.resident.load(Ordering::Relaxed),
            live: self.live_pages(),
        }
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_reuse() {
        let stats = StorageStats::default();
        let mut pool = PagePool::new(128, stats.clone());
        let a = pool.alloc();
        let b = pool.alloc();
        assert_ne!(a, b);
        assert_ne!(a, NO_PAGE);
        pool.free(a);
        let c = pool.alloc();
        assert_eq!(c, a, "freed pages are reused");
        assert_eq!(pool.live_pages(), 2);
        assert_eq!(stats.page_allocs(), 3);
        assert_eq!(stats.page_frees(), 1);
    }

    #[test]
    fn access_counting() {
        let stats = StorageStats::default();
        let mut pool = PagePool::new(64, stats.clone());
        let p = pool.alloc();
        let _ = pool.read(p);
        let _ = pool.read(p);
        pool.write(p)[0] = 7;
        assert_eq!(stats.page_reads(), 2);
        assert_eq!(stats.page_writes(), 1);
        assert_eq!(pool.read(p)[0], 7);
    }

    #[test]
    fn writes_dirty_and_stamp_pages_and_flush_respects_wal_rule() {
        let stats = StorageStats::default();
        let mut pool = PagePool::new(64, stats.clone());
        let a = pool.alloc();
        let b = pool.alloc();
        stats.set_current_lsn(5);
        pool.write(a)[0] = 1;
        stats.set_current_lsn(9);
        pool.write(b)[0] = 2;
        assert_eq!(pool.dirty_pages(), 2);
        // Log durable through LSN 5: only page `a` may be flushed.
        assert_eq!(pool.flush_dirty(5), 1);
        assert_eq!(pool.dirty_pages(), 1);
        assert_eq!(pool.flush_dirty(9), 1);
        assert_eq!(pool.dirty_pages(), 0);
        assert_eq!(pool.pool_stats().flushes, 2);
    }

    #[test]
    fn eviction_prefers_clean_lru_and_faults_count_as_misses() {
        let stats = StorageStats::default();
        let mut pool = PagePool::with_budget(64, stats.clone(), Duration::ZERO, Some(2));
        let a = pool.alloc();
        let b = pool.alloc();
        // Allocating a third page must evict the LRU clean page (a).
        let c = pool.alloc();
        let ps = pool.pool_stats();
        assert!(ps.evictions >= 1, "expected an eviction, got {ps:?}");
        assert!(ps.resident <= 2);
        // The evicted page faults back in: its bytes survive.
        pool.write(a)[0] = 42;
        assert_eq!(pool.read(a)[0], 42);
        assert!(pool.pool_stats().misses >= 1);
        let _ = (b, c);
    }

    #[test]
    fn dirty_and_pinned_pages_are_not_evicted() {
        let stats = StorageStats::default();
        let mut pool = PagePool::with_budget(64, stats.clone(), Duration::ZERO, Some(2));
        let a = pool.alloc();
        let b = pool.alloc();
        pool.pin(a);
        stats.set_current_lsn(3);
        pool.write(b)[0] = 1; // b dirty, a pinned: no victims
        let _c = pool.alloc();
        let ps = pool.pool_stats();
        assert!(ps.evict_blocked >= 1, "eviction should have been blocked: {ps:?}");
        // Flush cleans b; the next allocation can evict it.
        pool.flush_dirty(3);
        let _d = pool.alloc();
        assert!(pool.pool_stats().evictions >= 1);
    }
}
