//! The page pool: document container pages plus access statistics.
//!
//! In the paper's testbed, pages live in DB buffers over an IDE disk and
//! "references to external memory for locking purposes should be avoided".
//! Here the pool is the in-memory stand-in for buffer + disk: every page
//! read/write is counted, so experiments can report page-access counts
//! where the paper reports I/O-bound execution times (see DESIGN.md).
//!
//! Since the WAL landed the pool is a real (if simulated) buffer manager:
//! each page frame carries a `page_lsn` (the LSN of the log record
//! covering its latest mutation), a dirty bit, a pin count, and a
//! residency bit. The pool runs **steal/no-force**: dirty pages may leave
//! the buffer before commit — but only once the covering log record is
//! durable ([`PagePool::flush_dirty`] enforces the WAL rule) — and commit
//! never forces data pages, only the log.
//!
//! Eviction under a `max_resident` budget is governed by an
//! [`EvictPolicy`]: the default is scan-resistant **LRU-2** (two access
//! histories per frame with a correlated-reference period, plus a
//! bounded ghost list that remembers the history of recently evicted
//! pages), with plain clean-LRU kept as the comparison baseline. When no
//! clean unpinned victim exists, eviction *forces a synchronous
//! write-back* of the oldest WAL-safe dirty victim (bounded attempts,
//! counted in [`PoolStats::forced_writebacks`]) instead of overcommitting
//! the buffer.
//!
//! With a [`PageBackendConfig::File`] backend ([`crate::FileBackend`]),
//! write-backs `pwrite` CRC-stamped page frames into a real page file
//! and fault-ins `pread` + verify them; in the default simulated mode,
//! evicted frames keep their bytes in memory (they model pages on disk)
//! and fault back in as buffer misses.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use xtc_failpoint::ScopeId;
use xtc_obs::{CostKind, EventKind, Obs};

use crate::backend::{FileBackend, PageBackendConfig};

/// Identifier of a page inside a [`PagePool`]. `0` is reserved as "no page"
/// (niche for leaf-chain terminators).
pub type PageId = u32;

/// The reserved null page id.
pub const NO_PAGE: PageId = 0;

/// In-site retry budget for transient injected I/O faults.
const IO_ATTEMPTS: u32 = 4;
/// Base backoff between injected-fault retries (grows exponentially).
const IO_BACKOFF_BASE: Duration = Duration::from_micros(50);
/// Dirty victims a blocked eviction will attempt to force-write before
/// giving up and overcommitting the buffer.
const FORCED_WRITEBACK_TRIES: usize = 3;
/// Default correlated-reference period for LRU-2, in LRU-clock ticks:
/// re-references of a page within this window (one B*-tree descent or
/// leaf-scan burst re-reading the same page) count as a single
/// uncorrelated reference, so a sequential scan cannot fake a hot
/// history.
pub const DEFAULT_CORRELATED_TICKS: u64 = 16;

/// Which frame the pool evicts when the residency budget is exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictPolicy {
    /// Clean, unpinned frames in strict LRU order — the historical
    /// behavior, kept as the bench baseline. A sequential scan flushes
    /// the hot set.
    CleanLru,
    /// Scan-resistant LRU-2: each frame remembers its last two
    /// *uncorrelated* reference times; frames referenced only once
    /// (infinite backward K-distance — scan pages) are evicted first, in
    /// LRU order, before any twice-referenced frame. A ghost list
    /// remembers the history of recently evicted pages so a hot page
    /// faulting back in resumes its history instead of starting cold.
    Lru2 {
        /// References to the same page within this many LRU-clock ticks
        /// of its previous reference are treated as one reference.
        correlated_ticks: u64,
    },
}

impl Default for EvictPolicy {
    fn default() -> Self {
        EvictPolicy::Lru2 {
            correlated_ticks: DEFAULT_CORRELATED_TICKS,
        }
    }
}

/// Full pool configuration (the named-constructor surface grew past
/// usefulness once backends and policies arrived).
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Page size in bytes.
    pub page_size: usize,
    /// Simulated per-read latency (spin-waited, charged once per read).
    pub read_latency: Duration,
    /// Simulated per-write-back latency (charged as
    /// [`CostKind::PageWrite`] once per page flushed; zero by default so
    /// deterministic runs are unchanged).
    pub write_latency: Duration,
    /// Extra simulated latency charged only on a buffer miss (fault-in).
    /// Zero by default; the storage bench uses it to price real media so
    /// hit rate translates into throughput.
    pub miss_latency: Duration,
    /// Residency budget; `None` = unbounded.
    pub max_resident: Option<usize>,
    /// Eviction policy under the budget.
    pub policy: EvictPolicy,
    /// Where page bytes live: simulated memory or a real page file.
    pub backend: PageBackendConfig,
    /// Window (in LRU-clock ticks) within which repeated touches of one
    /// page count as a single logical reference for the hit/miss
    /// counters — the fix-level hit ratio, identical under every
    /// eviction policy. The storage bench widens it to transaction
    /// scale, following the LRU-2 correlated-reference period.
    pub burst_ticks: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            page_size: 8192,
            read_latency: Duration::ZERO,
            write_latency: Duration::ZERO,
            miss_latency: Duration::ZERO,
            max_resident: None,
            policy: EvictPolicy::default(),
            backend: PageBackendConfig::Sim,
            burst_ticks: DEFAULT_CORRELATED_TICKS,
        }
    }
}

/// Shared counters of logical page accesses.
///
/// Cloned handles observe the same counters; the lock-protocol experiments
/// read them to compare storage work across protocols (e.g. the *-2PL
/// group's IDX subtree scans in CLUSTER2). The handle also carries the two
/// ambient signals the WAL integration needs: the LSN to stamp on dirtied
/// pages ([`StorageStats::set_current_lsn`]) and the poison flag a crash
/// failpoint raises from deep inside a page split.
#[derive(Debug, Default, Clone)]
pub struct StorageStats {
    inner: Arc<StatsInner>,
}

#[derive(Debug, Default)]
struct StatsInner {
    page_reads: AtomicU64,
    page_writes: AtomicU64,
    page_allocs: AtomicU64,
    page_frees: AtomicU64,
    buffer_hits: AtomicU64,
    buffer_misses: AtomicU64,
    page_flushes: AtomicU64,
    evictions: AtomicU64,
    evict_blocked: AtomicU64,
    /// Write-backs the `pool.evict_write` fault site failed permanently
    /// (the page stayed dirty; a later flush retries it).
    flush_faults: AtomicU64,
    /// Fault-ins that found the page's access history in the ghost list
    /// (LRU-2 scan resistance working as intended).
    ghost_hits: AtomicU64,
    /// Dirty victims synchronously written back on the eviction path
    /// because no clean unpinned victim existed.
    forced_writebacks: AtomicU64,
    /// Index probes answered by a negative-lookup filter without a
    /// B*-tree descent (counted by the node manager, surfaced here so
    /// the shared stats handle carries all storage accounting).
    filter_negatives: AtomicU64,
    /// Total filter probes (hits + passes), for hit-rate reporting.
    filter_probes: AtomicU64,
    /// LSN stamped on pages dirtied by the mutation in flight (set by the
    /// transaction layer under its log mutex; `0` = no WAL).
    current_lsn: AtomicU64,
    /// Highest LSN the engine's WAL is known to have made durable
    /// (published by the transaction layer after group-commit flushes and
    /// by checkpoints/writeback; `0` = nothing durable or no WAL). The
    /// eviction path reads it to pick WAL-safe forced-writeback victims.
    durable_lsn: AtomicU64,
    /// Raised by a crash failpoint at a site with no error path (e.g.
    /// mid-split); the transaction layer checks it after every mutation.
    poisoned: AtomicBool,
    /// Observability handle: page reads charge their simulated latency to
    /// the virtual clock here, and page events go to the trace (if on).
    obs: Obs,
    /// Failpoint scope of the owning engine: storage fault sites
    /// (`store.page_read`, `store.page_read_io`, `pool.evict_write`,
    /// `btree.split`) evaluate in it, so chaos can fault one document in
    /// a catalog without touching its neighbors. Defaults to
    /// [`xtc_failpoint::GLOBAL`].
    scope: ScopeId,
}

impl StorageStats {
    /// Stats wired to an observability handle: page accesses charge the
    /// virtual clock and (when tracing) emit page events.
    pub fn with_obs(obs: Obs) -> StorageStats {
        Self::with_obs_scoped(obs, xtc_failpoint::GLOBAL)
    }

    /// Stats wired to an observability handle and an engine failpoint
    /// scope (see [`StorageStats::failpoint_scope`]).
    pub fn with_obs_scoped(obs: Obs, scope: ScopeId) -> StorageStats {
        StorageStats {
            inner: Arc::new(StatsInner {
                obs,
                scope,
                ..StatsInner::default()
            }),
        }
    }

    /// The observability handle these stats report into.
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// The failpoint scope storage fault sites evaluate in.
    pub fn failpoint_scope(&self) -> ScopeId {
        self.inner.scope
    }

    /// Pages read (pinned for read access).
    pub fn page_reads(&self) -> u64 {
        self.inner.page_reads.load(Ordering::Relaxed)
    }

    /// Pages written (pinned for write access).
    pub fn page_writes(&self) -> u64 {
        self.inner.page_writes.load(Ordering::Relaxed)
    }

    /// Pages allocated over the pool's lifetime.
    pub fn page_allocs(&self) -> u64 {
        self.inner.page_allocs.load(Ordering::Relaxed)
    }

    /// Pages returned to the freelist.
    pub fn page_frees(&self) -> u64 {
        self.inner.page_frees.load(Ordering::Relaxed)
    }

    /// Sets the LSN that subsequent page writes stamp as their
    /// `page_lsn`. The transaction layer calls this (under its log mutex)
    /// with the LSN of the redo record covering the mutation.
    pub fn set_current_lsn(&self, lsn: u64) {
        self.inner.current_lsn.store(lsn, Ordering::Relaxed);
    }

    /// The LSN currently stamped on dirtied pages.
    pub fn current_lsn(&self) -> u64 {
        self.inner.current_lsn.load(Ordering::Relaxed)
    }

    /// Publishes the WAL's durable LSN (monotone). The transaction layer
    /// calls this after commit flushes; checkpoints and the background
    /// writeback thread refresh it too. Eviction reads it to decide which
    /// dirty pages are WAL-safe to force-write.
    pub fn set_durable_lsn(&self, lsn: u64) {
        self.inner.durable_lsn.fetch_max(lsn, Ordering::Relaxed);
    }

    /// The last published durable LSN (`0` = nothing durable / no WAL).
    pub fn durable_lsn(&self) -> u64 {
        self.inner.durable_lsn.load(Ordering::Relaxed)
    }

    /// Counts an index probe that consulted a negative-lookup filter.
    pub fn count_filter_probe(&self) {
        self.inner.filter_probes.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a probe the filter answered "absent" (descent skipped).
    pub fn count_filter_negative(&self) {
        self.inner.filter_negatives.fetch_add(1, Ordering::Relaxed);
    }

    /// Index probes that consulted a negative-lookup filter.
    pub fn filter_probes(&self) -> u64 {
        self.inner.filter_probes.load(Ordering::Relaxed)
    }

    /// Probes answered "absent" by the filter (descents skipped).
    pub fn filter_negatives(&self) -> u64 {
        self.inner.filter_negatives.load(Ordering::Relaxed)
    }

    /// Fault-ins whose access history was found in the ghost list.
    pub fn ghost_hits(&self) -> u64 {
        self.inner.ghost_hits.load(Ordering::Relaxed)
    }

    /// Marks the storage layer as crashed-in-place (a failpoint fired at
    /// a site with no error path). The engine checks this after each
    /// mutation and converts it into a WAL crash.
    pub fn poison(&self) {
        self.inner.poisoned.store(true, Ordering::Relaxed);
    }

    /// Whether [`StorageStats::poison`] was called.
    pub fn is_poisoned(&self) -> bool {
        self.inner.poisoned.load(Ordering::Relaxed)
    }

    pub(crate) fn count_read(&self) {
        self.inner.page_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_write(&self) {
        self.inner.page_writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_alloc(&self) {
        self.inner.page_allocs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_free(&self) {
        self.inner.page_frees.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_hit(&self) {
        self.inner.buffer_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_miss(&self) {
        self.inner.buffer_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_flush(&self) {
        self.inner.page_flushes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_eviction(&self) {
        self.inner.evictions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_evict_blocked(&self) {
        self.inner.evict_blocked.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_flush_fault(&self) {
        self.inner.flush_faults.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_ghost_hit(&self) {
        self.inner.ghost_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_forced_writeback(&self) {
        self.inner.forced_writebacks.fetch_add(1, Ordering::Relaxed);
    }
}

/// Snapshot of one pool's buffer-manager state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Uncorrelated reference bursts that found the page resident (the
    /// fix-level hit ratio: node-grain re-reads inside one burst are a
    /// single logical reference).
    pub hits: u64,
    /// Accesses that faulted the page in.
    pub misses: u64,
    /// Dirty pages written back by [`PagePool::flush_dirty`].
    pub flushes: u64,
    /// Frames evicted under the residency budget.
    pub evictions: u64,
    /// Times eviction found no clean, unpinned victim.
    pub evict_blocked: u64,
    /// Write-backs that failed permanently at the `pool.evict_write`
    /// fault site (the page stayed dirty).
    pub flush_faults: u64,
    /// Fault-ins whose access history was found in the LRU-2 ghost list.
    pub ghost_hits: u64,
    /// Dirty victims synchronously written back on the eviction path.
    pub forced_writebacks: u64,
    /// Index probes answered "absent" by a negative-lookup filter.
    pub filter_negatives: u64,
    /// Index probes that consulted a negative-lookup filter.
    pub filter_probes: u64,
    /// Currently dirty pages (mutated since their last flush).
    pub dirty: usize,
    /// Currently resident pages.
    pub resident: usize,
    /// Live (allocated, not freed) pages.
    pub live: usize,
}

/// One buffered page: its bytes plus the buffer-manager state the WAL
/// integration needs. The bytes persist across eviction — an evicted
/// frame models a page that only exists on disk.
#[derive(Debug)]
struct Frame {
    data: Box<[u8]>,
    /// LSN of the log record covering the latest mutation (`0` = never
    /// dirtied under a WAL).
    page_lsn: u64,
    /// Mutated since the last flush.
    dirty: bool,
    /// The file backend holds this page's bytes as of its last flush
    /// (always false in simulated mode).
    persisted: bool,
    /// Pinned frames (e.g. the tree root) are never evicted.
    pins: u32,
    /// In the buffer? Atomic because reads (`&self`) fault pages in.
    resident: AtomicBool,
    /// LRU clock value of the last access.
    last_use: AtomicU64,
    /// LRU-2 history: start of the current uncorrelated reference burst
    /// (`0` = never referenced).
    hist1: AtomicU64,
    /// LRU-2 history: start of the previous uncorrelated burst (`0` =
    /// referenced at most once — infinite backward K-distance).
    hist2: AtomicU64,
}

impl Frame {
    /// Eviction-priority key: frames are evicted in ascending key order.
    /// Under LRU-2 the key is (penultimate reference, last use): pages
    /// seen in only one burst (`hist2 == 0`) sort before every
    /// twice-referenced page — a sequential scan cannot displace the hot
    /// set. Under clean-LRU it degenerates to last-use order.
    fn evict_key(&self, policy: EvictPolicy) -> (u64, u64) {
        match policy {
            EvictPolicy::CleanLru => (0, self.last_use.load(Ordering::Relaxed)),
            EvictPolicy::Lru2 { .. } => (
                self.hist2.load(Ordering::Relaxed),
                self.last_use.load(Ordering::Relaxed),
            ),
        }
    }
}

/// Bounded memory of recently evicted pages' LRU-2 histories. A page
/// faulting back in while its entry survives resumes its history (a
/// *ghost hit*); entries expired from the queue are forgotten for good,
/// so the policy's memory stays O(budget) like a real LRU-2.
#[derive(Debug, Default)]
struct GhostList {
    /// Eviction order (front = oldest).
    queue: VecDeque<PageId>,
    /// PageId → (hist1, hist2) at eviction time. Parallel to `queue`.
    entries: std::collections::HashMap<PageId, (u64, u64)>,
}

impl GhostList {
    fn remember(&mut self, id: PageId, hist1: u64, hist2: u64, cap: usize) {
        if self.entries.insert(id, (hist1, hist2)).is_none() {
            self.queue.push_back(id);
        }
        while self.queue.len() > cap {
            if let Some(old) = self.queue.pop_front() {
                self.entries.remove(&old);
            }
        }
    }

    fn recall(&mut self, id: PageId) -> Option<(u64, u64)> {
        let hist = self.entries.remove(&id)?;
        if let Some(pos) = self.queue.iter().position(|&q| q == id) {
            self.queue.remove(pos);
        }
        Some(hist)
    }

    fn forget(&mut self, id: PageId) {
        if self.entries.remove(&id).is_some() {
            if let Some(pos) = self.queue.iter().position(|&q| q == id) {
                self.queue.remove(pos);
            }
        }
    }
}

/// A pool of fixed-size pages with a freelist and (optionally) a bounded
/// buffer. Not itself thread-safe: the owning B-tree wraps it (together
/// with the tree root) in its latch.
#[derive(Debug)]
pub struct PagePool {
    page_size: usize,
    frames: Vec<Option<Frame>>,
    free: Vec<PageId>,
    stats: StorageStats,
    /// Simulated per-read latency (spin-waited) — the stand-in for the
    /// paper's disk accesses; zero by default.
    read_latency: Duration,
    /// Simulated per-write-back latency, charged as
    /// [`CostKind::PageWrite`]; zero by default.
    write_latency: Duration,
    /// Extra latency charged (and spin-waited) only on a fault-in, so
    /// hit-rate differences become throughput differences in the bench.
    miss_latency: Duration,
    /// Residency budget; `None` = unbounded (every page stays resident).
    max_resident: Option<usize>,
    /// Which frame goes when the budget is exceeded.
    policy: EvictPolicy,
    /// Real page file, when configured; `None` = simulated storage.
    backend: Option<FileBackend>,
    /// LRU-2 history of recently evicted pages (mutex: reads fault pages
    /// in under `&self`).
    ghosts: Mutex<GhostList>,
    /// Ghost entries retained (≈ 2× the residency budget).
    ghost_cap: usize,
    /// Currently resident frames (atomic: reads fault pages in).
    resident: AtomicUsize,
    /// LRU clock.
    tick: AtomicU64,
    /// Hit/miss counting window: see [`PoolConfig::burst_ticks`].
    burst_ticks: u64,
}

impl PagePool {
    /// Creates an empty pool of `page_size`-byte pages.
    pub fn new(page_size: usize, stats: StorageStats) -> Self {
        Self::with_latency(page_size, stats, Duration::ZERO)
    }

    /// Creates a pool whose reads spin-wait `read_latency` each —
    /// converting page-access counts into wall-clock time the way the
    /// paper's IDE disk did (see DESIGN.md substitutions and CLUSTER2).
    pub fn with_latency(page_size: usize, stats: StorageStats, read_latency: Duration) -> Self {
        Self::with_budget(page_size, stats, read_latency, None)
    }

    /// Creates a pool with a residency budget: at most `max_resident`
    /// frames stay buffered; the excess is evicted under the default
    /// (LRU-2) policy.
    pub fn with_budget(
        page_size: usize,
        stats: StorageStats,
        read_latency: Duration,
        max_resident: Option<usize>,
    ) -> Self {
        Self::with_config(
            PoolConfig {
                page_size,
                read_latency,
                max_resident,
                ..PoolConfig::default()
            },
            stats,
        )
    }

    /// Creates a pool from a full [`PoolConfig`]. If a file backend is
    /// configured but the page file cannot be opened, the pool poisons
    /// the engine (the transaction layer surfaces it as a crash) and
    /// falls back to simulated storage so in-flight readers can drain.
    pub fn with_config(cfg: PoolConfig, stats: StorageStats) -> Self {
        let backend = match cfg.backend {
            PageBackendConfig::Sim => None,
            PageBackendConfig::File { ref path } => match FileBackend::open(path, cfg.page_size) {
                Ok(be) => Some(be),
                Err(_) => {
                    stats.poison();
                    None
                }
            },
        };
        let ghost_cap = cfg.max_resident.map(|m| (m * 2).max(8)).unwrap_or(1024);
        PagePool {
            page_size: cfg.page_size,
            frames: vec![None], // index 0 unused (NO_PAGE)
            free: Vec::new(),
            stats,
            read_latency: cfg.read_latency,
            write_latency: cfg.write_latency,
            miss_latency: cfg.miss_latency,
            max_resident: cfg.max_resident,
            policy: cfg.policy,
            backend,
            ghosts: Mutex::new(GhostList::default()),
            ghost_cap,
            resident: AtomicUsize::new(0),
            tick: AtomicU64::new(0),
            burst_ticks: cfg.burst_ticks,
        }
    }

    /// The configured eviction policy.
    pub fn policy(&self) -> EvictPolicy {
        self.policy
    }

    /// Whether this pool writes pages through to a real page file.
    pub fn is_file_backed(&self) -> bool {
        self.backend.is_some()
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Allocates a zeroed page (resident, clean).
    pub fn alloc(&mut self) -> PageId {
        self.evict_to_budget(1);
        self.stats.count_alloc();
        let t = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let frame = Frame {
            data: vec![0u8; self.page_size].into_boxed_slice(),
            page_lsn: 0,
            dirty: false,
            persisted: false,
            pins: 0,
            resident: AtomicBool::new(true),
            last_use: AtomicU64::new(t),
            hist1: AtomicU64::new(t),
            hist2: AtomicU64::new(0),
        };
        self.resident.fetch_add(1, Ordering::Relaxed);
        let id = if let Some(id) = self.free.pop() {
            self.frames[id as usize] = Some(frame);
            id
        } else {
            self.frames.push(Some(frame));
            (self.frames.len() - 1) as PageId
        };
        // A reused id must not resume the previous tenant's history (or
        // ever read its stale file copy: `persisted` starts false).
        self.ghosts.lock().forget(id);
        id
    }

    /// Frees a page back to the pool.
    pub fn free(&mut self, id: PageId) {
        let frame = self.frames[id as usize]
            .take()
            .expect("double free of page");
        if frame.resident.load(Ordering::Relaxed) {
            self.resident.fetch_sub(1, Ordering::Relaxed);
        }
        self.ghosts.lock().forget(id);
        self.stats.count_free();
        self.free.push(id);
    }

    /// Touches a frame's access metadata: bumps the LRU clock, maintains
    /// the LRU-2 reference history, and counts a buffer hit or
    /// (fault-in) miss. Misses count per fault-in; hits count once per
    /// *uncorrelated burst* — a transaction hammering one resident page
    /// with node-grain reads is a single logical reference (the fix-level
    /// hit ratio buffer managers report), under both eviction policies.
    /// On a miss: the ghost list may resume the page's evicted history,
    /// a file backend re-reads (and CRC-verifies) the persisted copy,
    /// and the configured miss latency is charged.
    fn touch(&self, id: PageId, frame: &Frame) {
        let t = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let prev = frame.last_use.swap(t, Ordering::Relaxed);
        if let EvictPolicy::Lru2 { correlated_ticks } = self.policy {
            let h1 = frame.hist1.load(Ordering::Relaxed);
            if h1 == 0 {
                frame.hist1.store(t, Ordering::Relaxed);
            } else if t.saturating_sub(prev) > correlated_ticks {
                // A new uncorrelated burst: the burst that just ended
                // becomes the penultimate reference.
                frame.hist2.store(h1, Ordering::Relaxed);
                frame.hist1.store(t, Ordering::Relaxed);
            }
            // else: same burst (correlated re-reference) — no shift.
        }
        if frame.resident.swap(true, Ordering::Relaxed) {
            if prev == 0 || t.saturating_sub(prev) > self.burst_ticks {
                self.stats.count_hit();
            }
            return;
        }
        self.stats.count_miss();
        self.resident.fetch_add(1, Ordering::Relaxed);
        if let EvictPolicy::Lru2 { .. } = self.policy {
            if let Some((h1, _h2)) = self.ghosts.lock().recall(id) {
                // Resume the evicted history: this fault-in is a fresh
                // uncorrelated reference, the pre-eviction burst is the
                // penultimate one.
                frame.hist2.store(h1, Ordering::Relaxed);
                self.stats.count_ghost_hit();
                self.stats
                    .obs()
                    .record(EventKind::PoolGhostHit { page: u64::from(id) });
            }
        }
        // File mode: the fault-in is a real device read — `pread` the
        // persisted copy back and verify its CRC. Memory stays
        // authoritative (the frame's bytes are returned either way), but
        // a corrupted on-disk frame poisons the engine instead of being
        // silently ignored.
        if let Some(be) = &self.backend {
            if frame.persisted && !frame.dirty && be.read_page(id).is_err() {
                self.stats.poison();
            }
        }
        if !self.miss_latency.is_zero() {
            self.stats
                .obs()
                .charge(CostKind::PageRead, self.miss_latency.as_micros() as u64);
            let until = std::time::Instant::now() + self.miss_latency;
            while std::time::Instant::now() < until {
                std::hint::spin_loop();
            }
        }
    }

    /// Read access to a page (counted; spin-waits the configured
    /// simulated latency). Faults the page in if it was evicted.
    pub fn read(&self, id: PageId) -> &[u8] {
        self.stats.count_read();
        // Virtual time: a read costs its *configured* latency — the
        // deterministic simulated I/O the paper's figures argue about —
        // regardless of how long the spin-wait below takes in wall time.
        let obs = self.stats.obs();
        obs.charge(CostKind::PageRead, self.read_latency.as_micros() as u64);
        obs.record(EventKind::PageRead {
            page: u64::from(id),
        });
        // Chaos-test hook: page reads have no error path, so an armed
        // `Error` action degrades to a no-op and only `Delay` injects.
        xtc_failpoint::fire_delay_in(self.stats.failpoint_scope(), "store.page_read");
        // Fault site `store.page_read_io` models the read's device op:
        // transient faults are absorbed in-site with backoff; a permanent
        // fault poisons the engine (the transaction layer converts that
        // into an abort or a WAL crash — never a panic) and the stale
        // in-memory bytes are returned so in-flight readers can drain.
        match xtc_failpoint::eval_io_in(
            self.stats.failpoint_scope(),
            "store.page_read_io",
            IO_ATTEMPTS,
            IO_BACKOFF_BASE,
        ) {
            xtc_failpoint::IoFault::Ok => {}
            xtc_failpoint::IoFault::Transient { retries } => {
                if retries > 0 {
                    let slept =
                        IO_BACKOFF_BASE.as_micros() as u64 * ((1u64 << retries.min(16)) - 1);
                    obs.charge(CostKind::RetryBackoff, slept);
                }
            }
            xtc_failpoint::IoFault::Permanent => self.stats.poison(),
        }
        if !self.read_latency.is_zero() {
            let until = std::time::Instant::now() + self.read_latency;
            while std::time::Instant::now() < until {
                std::hint::spin_loop();
            }
        }
        let frame = self.frames[id as usize]
            .as_ref()
            .expect("read of freed page");
        self.touch(id, frame);
        &frame.data
    }

    /// Write access to a page (counted). Marks the frame dirty and stamps
    /// it with the ambient LSN ([`StorageStats::set_current_lsn`]) — the
    /// WAL rule's bookkeeping.
    pub fn write(&mut self, id: PageId) -> &mut [u8] {
        self.evict_to_budget(0);
        self.stats.count_write();
        self.stats.obs().record(EventKind::PageWrite {
            page: u64::from(id),
        });
        let lsn = self.stats.current_lsn();
        {
            let frame = self.frames[id as usize]
                .as_ref()
                .expect("write of freed page");
            self.touch(id, frame);
        }
        let frame = self.frames[id as usize].as_mut().unwrap();
        frame.dirty = true;
        // The bytes are about to diverge from the file copy.
        frame.persisted = false;
        if lsn > frame.page_lsn {
            frame.page_lsn = lsn;
        }
        &mut frame.data
    }

    /// Pins a page: it will not be evicted until unpinned.
    pub fn pin(&mut self, id: PageId) {
        if let Some(frame) = self.frames[id as usize].as_mut() {
            frame.pins += 1;
        }
    }

    /// Releases one pin.
    pub fn unpin(&mut self, id: PageId) {
        if let Some(frame) = self.frames[id as usize].as_mut() {
            frame.pins = frame.pins.saturating_sub(1);
        }
    }

    /// Evicts clean, unpinned frames (in [`EvictPolicy`] order) until the
    /// resident count fits the budget with `headroom` slots to spare.
    /// Dirty and pinned frames are never plain victims — a dirty page may
    /// cover log records that are not durable yet; evicting it would
    /// break the WAL rule. When no clean victim exists, the pool
    /// *force-writes* the best WAL-safe dirty victim (bounded attempts)
    /// before giving up and overcommitting.
    fn evict_to_budget(&mut self, headroom: usize) {
        let Some(max) = self.max_resident else {
            return;
        };
        let max = max.saturating_sub(headroom).max(1);
        while self.resident.load(Ordering::Relaxed) > max {
            let victim = self
                .frames
                .iter()
                .enumerate()
                .filter_map(|(i, f)| f.as_ref().map(|f| (i, f)))
                .filter(|(_, f)| f.resident.load(Ordering::Relaxed) && !f.dirty && f.pins == 0)
                .min_by_key(|(_, f)| f.evict_key(self.policy))
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    // File mode: spill a clean-but-never-persisted frame
                    // before it leaves the buffer, so the later fault-in
                    // has a real on-disk copy to verify. A spill failure
                    // is not fatal — memory stays authoritative.
                    let frame = self.frames[i].as_mut().unwrap();
                    if let Some(be) = &self.backend {
                        if !frame.persisted {
                            match be.write_page(i as PageId, frame.page_lsn, &frame.data) {
                                Ok(()) => frame.persisted = true,
                                Err(_) => self.stats.count_flush_fault(),
                            }
                        }
                    }
                    frame.resident.store(false, Ordering::Relaxed);
                    if let EvictPolicy::Lru2 { .. } = self.policy {
                        // Move the reference history into the ghost list;
                        // the frame starts cold if it faults back in
                        // after its ghost entry expires.
                        let h1 = frame.hist1.swap(0, Ordering::Relaxed);
                        let h2 = frame.hist2.swap(0, Ordering::Relaxed);
                        if h1 != 0 {
                            self.ghosts.lock().remember(i as PageId, h1, h2, self.ghost_cap);
                        }
                    }
                    self.resident.fetch_sub(1, Ordering::Relaxed);
                    self.stats.count_eviction();
                    self.stats.obs().record(EventKind::PageEvict { page: i as u64 });
                }
                None => {
                    // Everything resident is dirty or pinned. Force a
                    // synchronous write-back of a WAL-safe dirty victim
                    // so eviction can make progress; only overcommit
                    // when that fails too.
                    if !self.force_writeback_victim() {
                        self.stats.count_evict_blocked();
                        return;
                    }
                }
            }
        }
    }

    /// Synchronously writes back the best WAL-safe dirty victim
    /// (`page_lsn <= durable_lsn`, unpinned, resident) so eviction can
    /// proceed, trying up to [`FORCED_WRITEBACK_TRIES`] candidates when
    /// the `pool.evict_write` fault site rejects one. Returns whether a
    /// page was cleaned.
    fn force_writeback_victim(&mut self) -> bool {
        let durable = self.stats.durable_lsn();
        let mut candidates: Vec<(usize, (u64, u64))> = self
            .frames
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().map(|f| (i, f)))
            .filter(|(_, f)| {
                f.resident.load(Ordering::Relaxed)
                    && f.dirty
                    && f.pins == 0
                    && f.page_lsn <= durable
            })
            .map(|(i, f)| (i, f.evict_key(self.policy)))
            .collect();
        candidates.sort_by_key(|&(_, key)| key);
        for &(i, _) in candidates.iter().take(FORCED_WRITEBACK_TRIES) {
            match xtc_failpoint::eval_io_in(
                self.stats.failpoint_scope(),
                "pool.evict_write",
                IO_ATTEMPTS,
                IO_BACKOFF_BASE,
            ) {
                xtc_failpoint::IoFault::Permanent => {
                    self.stats.count_flush_fault();
                    continue;
                }
                xtc_failpoint::IoFault::Transient { retries } => {
                    if retries > 0 {
                        let slept =
                            IO_BACKOFF_BASE.as_micros() as u64 * ((1u64 << retries.min(16)) - 1);
                        self.stats.obs().charge(CostKind::RetryBackoff, slept);
                    }
                }
                xtc_failpoint::IoFault::Ok => {}
            }
            let frame = self.frames[i].as_mut().unwrap();
            if let Some(be) = &self.backend {
                if be.write_page(i as PageId, frame.page_lsn, &frame.data).is_err() {
                    self.stats.count_flush_fault();
                    continue;
                }
                frame.persisted = true;
            }
            frame.dirty = false;
            self.stats.count_flush();
            self.stats.count_forced_writeback();
            let obs = self.stats.obs();
            obs.charge(CostKind::PageWrite, self.write_latency.as_micros() as u64);
            obs.record(EventKind::PageWriteback {
                page: i as u64,
                forced: true,
            });
            return true;
        }
        false
    }

    /// Writes back every dirty page whose covering log record is durable
    /// (`page_lsn <= durable_lsn`) and returns how many were flushed.
    /// Pages dirtied past `durable_lsn` stay dirty — flushing them would
    /// violate the WAL rule. With `durable_lsn == u64::MAX` this is an
    /// unconditional flush (no-WAL shutdown).
    pub fn flush_dirty(&mut self, durable_lsn: u64) -> usize {
        let mut flushed = 0;
        for (i, slot) in self.frames.iter_mut().enumerate() {
            let Some(frame) = slot.as_mut() else { continue };
            if frame.dirty && frame.page_lsn <= durable_lsn {
                // Fault site `pool.evict_write` models the write-back's
                // device op. A permanent fault leaves the page dirty —
                // harmless under the WAL rule (the covering log record
                // is durable; a later flush simply retries) — and is
                // counted so chaos reports can assert it happened.
                match xtc_failpoint::eval_io_in(
                    self.stats.failpoint_scope(),
                    "pool.evict_write",
                    IO_ATTEMPTS,
                    IO_BACKOFF_BASE,
                ) {
                    xtc_failpoint::IoFault::Permanent => {
                        self.stats.count_flush_fault();
                        continue;
                    }
                    xtc_failpoint::IoFault::Transient { retries } => {
                        if retries > 0 {
                            let slept = IO_BACKOFF_BASE.as_micros() as u64
                                * ((1u64 << retries.min(16)) - 1);
                            self.stats.obs().charge(CostKind::RetryBackoff, slept);
                        }
                    }
                    xtc_failpoint::IoFault::Ok => {}
                }
                if let Some(be) = &self.backend {
                    if be
                        .write_page(i as PageId, frame.page_lsn, &frame.data)
                        .is_err()
                    {
                        // Real device write failed: the page stays dirty
                        // (same contract as a permanent injected fault).
                        self.stats.count_flush_fault();
                        continue;
                    }
                    frame.persisted = true;
                }
                frame.dirty = false;
                self.stats.count_flush();
                let obs = self.stats.obs();
                obs.charge(CostKind::PageWrite, self.write_latency.as_micros() as u64);
                obs.record(EventKind::PageWriteback {
                    page: i as u64,
                    forced: false,
                });
                flushed += 1;
            }
        }
        if flushed > 0 {
            if let Some(be) = &self.backend {
                // Checkpoint integration: flushed pages are made durable
                // (the WAL synced first; see `XtcDb::checkpoint`).
                if be.sync().is_err() {
                    self.stats.count_flush_fault();
                }
            }
        }
        flushed
    }

    /// Number of currently dirty pages.
    pub fn dirty_pages(&self) -> usize {
        self.frames
            .iter()
            .flatten()
            .filter(|f| f.dirty)
            .count()
    }

    /// Number of live (allocated, not freed) pages.
    pub fn live_pages(&self) -> usize {
        self.frames.iter().filter(|p| p.is_some()).count()
    }

    /// Buffer-manager snapshot for this pool.
    pub fn pool_stats(&self) -> PoolStats {
        PoolStats {
            hits: self.stats.inner.buffer_hits.load(Ordering::Relaxed),
            misses: self.stats.inner.buffer_misses.load(Ordering::Relaxed),
            flushes: self.stats.inner.page_flushes.load(Ordering::Relaxed),
            evictions: self.stats.inner.evictions.load(Ordering::Relaxed),
            evict_blocked: self.stats.inner.evict_blocked.load(Ordering::Relaxed),
            flush_faults: self.stats.inner.flush_faults.load(Ordering::Relaxed),
            ghost_hits: self.stats.inner.ghost_hits.load(Ordering::Relaxed),
            forced_writebacks: self.stats.inner.forced_writebacks.load(Ordering::Relaxed),
            filter_negatives: self.stats.inner.filter_negatives.load(Ordering::Relaxed),
            filter_probes: self.stats.inner.filter_probes.load(Ordering::Relaxed),
            dirty: self.dirty_pages(),
            resident: self.resident.load(Ordering::Relaxed),
            live: self.live_pages(),
        }
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }

    /// Checks the buffer-manager invariants the property tests lean on:
    /// the resident counter matches the frames, no page sits on both the
    /// real and the ghost queue, pinned pages are never evicted, evicted
    /// frames carry no live LRU-2 history, and the ghost list respects
    /// its bound. Test support, not API.
    #[doc(hidden)]
    pub fn debug_check_coherence(&self) -> Result<(), String> {
        let ghosts = self.ghosts.lock();
        if ghosts.queue.len() != ghosts.entries.len() {
            return Err(format!(
                "ghost queue/entries out of sync: {} vs {}",
                ghosts.queue.len(),
                ghosts.entries.len()
            ));
        }
        if ghosts.queue.len() > self.ghost_cap {
            return Err(format!(
                "ghost list over capacity: {} > {}",
                ghosts.queue.len(),
                self.ghost_cap
            ));
        }
        let lru2 = matches!(self.policy, EvictPolicy::Lru2 { .. });
        let mut resident_count = 0usize;
        for (i, slot) in self.frames.iter().enumerate() {
            let id = i as PageId;
            let Some(frame) = slot.as_ref() else {
                if ghosts.entries.contains_key(&id) {
                    return Err(format!("ghost entry for dead page {id}"));
                }
                continue;
            };
            let resident = frame.resident.load(Ordering::Relaxed);
            if resident {
                resident_count += 1;
                if ghosts.entries.contains_key(&id) {
                    return Err(format!("page {id} on both real and ghost queues"));
                }
            } else {
                if frame.pins > 0 {
                    return Err(format!("pinned page {id} was evicted"));
                }
                if lru2 && frame.hist1.load(Ordering::Relaxed) != 0 {
                    return Err(format!("evicted page {id} kept live LRU-2 history"));
                }
            }
        }
        let counter = self.resident.load(Ordering::Relaxed);
        if counter != resident_count {
            return Err(format!(
                "resident counter {counter} != {resident_count} resident frames"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_reuse() {
        let stats = StorageStats::default();
        let mut pool = PagePool::new(128, stats.clone());
        let a = pool.alloc();
        let b = pool.alloc();
        assert_ne!(a, b);
        assert_ne!(a, NO_PAGE);
        pool.free(a);
        let c = pool.alloc();
        assert_eq!(c, a, "freed pages are reused");
        assert_eq!(pool.live_pages(), 2);
        assert_eq!(stats.page_allocs(), 3);
        assert_eq!(stats.page_frees(), 1);
    }

    #[test]
    fn access_counting() {
        let stats = StorageStats::default();
        let mut pool = PagePool::new(64, stats.clone());
        let p = pool.alloc();
        let _ = pool.read(p);
        let _ = pool.read(p);
        pool.write(p)[0] = 7;
        assert_eq!(stats.page_reads(), 2);
        assert_eq!(stats.page_writes(), 1);
        assert_eq!(pool.read(p)[0], 7);
    }

    #[test]
    fn writes_dirty_and_stamp_pages_and_flush_respects_wal_rule() {
        let stats = StorageStats::default();
        let mut pool = PagePool::new(64, stats.clone());
        let a = pool.alloc();
        let b = pool.alloc();
        stats.set_current_lsn(5);
        pool.write(a)[0] = 1;
        stats.set_current_lsn(9);
        pool.write(b)[0] = 2;
        assert_eq!(pool.dirty_pages(), 2);
        // Log durable through LSN 5: only page `a` may be flushed.
        assert_eq!(pool.flush_dirty(5), 1);
        assert_eq!(pool.dirty_pages(), 1);
        assert_eq!(pool.flush_dirty(9), 1);
        assert_eq!(pool.dirty_pages(), 0);
        assert_eq!(pool.pool_stats().flushes, 2);
    }

    #[test]
    fn eviction_prefers_clean_lru_and_faults_count_as_misses() {
        let stats = StorageStats::default();
        let mut pool = PagePool::with_budget(64, stats.clone(), Duration::ZERO, Some(2));
        let a = pool.alloc();
        let b = pool.alloc();
        // Allocating a third page must evict the LRU clean page (a).
        let c = pool.alloc();
        let ps = pool.pool_stats();
        assert!(ps.evictions >= 1, "expected an eviction, got {ps:?}");
        assert!(ps.resident <= 2);
        // The evicted page faults back in: its bytes survive.
        pool.write(a)[0] = 42;
        assert_eq!(pool.read(a)[0], 42);
        assert!(pool.pool_stats().misses >= 1);
        let _ = (b, c);
    }

    fn lru2_pool(budget: usize) -> (StorageStats, PagePool) {
        let stats = StorageStats::default();
        let pool = PagePool::with_config(
            PoolConfig {
                page_size: 64,
                max_resident: Some(budget),
                // Zero correlated window: every re-reference is a new
                // uncorrelated burst, which keeps the tests compact.
                policy: EvictPolicy::Lru2 { correlated_ticks: 0 },
                ..PoolConfig::default()
            },
            stats.clone(),
        );
        (stats, pool)
    }

    #[test]
    fn lru2_scan_does_not_flush_the_hot_set() {
        let (_stats, mut pool) = lru2_pool(4);
        let hot_a = pool.alloc();
        let hot_b = pool.alloc();
        // Re-reference the hot pages: both now have two uncorrelated
        // references (finite backward K-distance).
        let _ = pool.read(hot_a);
        let _ = pool.read(hot_b);
        // A sequential scan: six pages referenced once each (with
        // `correlated_ticks: 0` a second touch would already count as a
        // new burst, so the scan must stay single-touch).
        let _scan: Vec<PageId> = (0..6).map(|_| pool.alloc()).collect();
        // The scan evicted pages, but only its own: the hot set is still
        // resident, so re-reading it adds no misses.
        assert!(pool.pool_stats().evictions >= 4);
        let misses_before = pool.pool_stats().misses;
        let _ = pool.read(hot_a);
        let _ = pool.read(hot_b);
        assert_eq!(
            pool.pool_stats().misses,
            misses_before,
            "scan displaced the hot set"
        );
    }

    #[test]
    fn clean_lru_baseline_does_flush_the_hot_set() {
        // The same access pattern under the baseline policy evicts the
        // hot pages — the contrast the storage bench measures.
        let stats = StorageStats::default();
        let mut pool = PagePool::with_config(
            PoolConfig {
                page_size: 64,
                max_resident: Some(4),
                policy: EvictPolicy::CleanLru,
                ..PoolConfig::default()
            },
            stats.clone(),
        );
        let hot_a = pool.alloc();
        let hot_b = pool.alloc();
        let _ = pool.read(hot_a);
        let _ = pool.read(hot_b);
        for _ in 0..6 {
            let _ = pool.alloc();
        }
        let misses_before = pool.pool_stats().misses;
        let _ = pool.read(hot_a);
        let _ = pool.read(hot_b);
        assert!(
            pool.pool_stats().misses > misses_before,
            "clean-LRU unexpectedly survived the scan"
        );
    }

    #[test]
    fn ghost_list_resumes_history_on_fault_in() {
        let (stats, mut pool) = lru2_pool(3);
        let hot = pool.alloc();
        let _ = pool.read(hot); // two uncorrelated references
        // Enough once-read pages to push `hot` out despite its history
        // (eventually everything must go — the budget is 3).
        for _ in 0..8 {
            let p = pool.alloc();
            let _ = pool.read(p);
        }
        // Fault the hot page back in: its history comes from the ghosts.
        let _ = pool.read(hot);
        assert!(stats.ghost_hits() >= 1, "expected a ghost hit");
        assert_eq!(pool.pool_stats().ghost_hits, stats.ghost_hits());
    }

    #[test]
    fn blocked_eviction_forces_writeback_of_wal_safe_dirty_pages() {
        let (stats, mut pool) = lru2_pool(2);
        let a = pool.alloc();
        let b = pool.alloc();
        stats.set_current_lsn(4);
        pool.write(a)[0] = 1;
        pool.write(b)[0] = 2;
        // The WAL is durable past both pages' LSNs: eviction may clean
        // them synchronously instead of overcommitting.
        stats.set_durable_lsn(10);
        let _c = pool.alloc();
        let ps = pool.pool_stats();
        assert!(
            ps.forced_writebacks >= 1,
            "expected a forced write-back: {ps:?}"
        );
        assert_eq!(ps.evict_blocked, 0, "eviction should not have blocked");
        assert!(ps.resident <= 2);
    }

    #[test]
    fn file_backend_round_trips_evicted_pages_and_detects_corruption() {
        let dir = std::env::temp_dir().join(format!("xtc-pool-file-{}", std::process::id()));
        let path = dir.join("doc.pages");
        let stats = StorageStats::default();
        let mut pool = PagePool::with_config(
            PoolConfig {
                page_size: 64,
                max_resident: Some(2),
                // Plain LRU keeps the victim order of this test
                // deterministic (`a` must leave the buffer twice).
                policy: EvictPolicy::CleanLru,
                backend: PageBackendConfig::File { path: path.clone() },
                ..PoolConfig::default()
            },
            stats.clone(),
        );
        assert!(pool.is_file_backed());
        let a = pool.alloc();
        pool.write(a)[0] = 42;
        // Flush persists `a` into the page file (no WAL: flush-all).
        assert_eq!(pool.flush_dirty(u64::MAX), 1);
        // Evict `a` (budget 2, headroom on alloc) and fault it back in:
        // the fault-in preads + CRC-verifies the persisted copy.
        let _b = pool.alloc();
        let _c = pool.alloc();
        assert!(pool.pool_stats().evictions >= 1);
        assert_eq!(pool.read(a)[0], 42);
        assert!(!stats.is_poisoned());
        // Corrupt the on-disk frame behind the pool's back; the next
        // fault-in of `a` must poison the engine, not serve silently.
        {
            use std::os::unix::fs::FileExt;
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            let slot = (crate::backend::PAGE_HEADER + 64) as u64;
            f.write_all_at(&[0xFF; 8], a as u64 * slot + crate::backend::PAGE_HEADER as u64)
                .unwrap();
        }
        let _d = pool.alloc(); // pushes `a` (clean, persisted) out again
        let _e = pool.alloc();
        let _ = pool.read(a);
        assert!(
            stats.is_poisoned(),
            "corrupted page file must poison the engine: {:?}",
            pool.pool_stats()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dirty_and_pinned_pages_are_not_evicted() {
        let stats = StorageStats::default();
        let mut pool = PagePool::with_budget(64, stats.clone(), Duration::ZERO, Some(2));
        let a = pool.alloc();
        let b = pool.alloc();
        pool.pin(a);
        stats.set_current_lsn(3);
        pool.write(b)[0] = 1; // b dirty, a pinned: no victims
        let _c = pool.alloc();
        let ps = pool.pool_stats();
        assert!(ps.evict_blocked >= 1, "eviction should have been blocked: {ps:?}");
        // Flush cleans b; the next allocation can evict it.
        pool.flush_dirty(3);
        let _d = pool.alloc();
        assert!(pool.pool_stats().evictions >= 1);
    }
}
