//! The page pool: document container pages plus access statistics.
//!
//! In the paper's testbed, pages live in DB buffers over an IDE disk and
//! "references to external memory for locking purposes should be avoided".
//! Here the pool is the in-memory stand-in for buffer + disk: every page
//! read/write is counted, so experiments can report page-access counts
//! where the paper reports I/O-bound execution times (see DESIGN.md).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Identifier of a page inside a [`PagePool`]. `0` is reserved as "no page"
/// (niche for leaf-chain terminators).
pub type PageId = u32;

/// The reserved null page id.
pub const NO_PAGE: PageId = 0;

/// Shared counters of logical page accesses.
///
/// Cloned handles observe the same counters; the lock-protocol experiments
/// read them to compare storage work across protocols (e.g. the *-2PL
/// group's IDX subtree scans in CLUSTER2).
#[derive(Debug, Default, Clone)]
pub struct StorageStats {
    inner: Arc<StatsInner>,
}

#[derive(Debug, Default)]
struct StatsInner {
    page_reads: AtomicU64,
    page_writes: AtomicU64,
    page_allocs: AtomicU64,
    page_frees: AtomicU64,
}

impl StorageStats {
    /// Pages read (pinned for read access).
    pub fn page_reads(&self) -> u64 {
        self.inner.page_reads.load(Ordering::Relaxed)
    }

    /// Pages written (pinned for write access).
    pub fn page_writes(&self) -> u64 {
        self.inner.page_writes.load(Ordering::Relaxed)
    }

    /// Pages allocated over the pool's lifetime.
    pub fn page_allocs(&self) -> u64 {
        self.inner.page_allocs.load(Ordering::Relaxed)
    }

    /// Pages returned to the freelist.
    pub fn page_frees(&self) -> u64 {
        self.inner.page_frees.load(Ordering::Relaxed)
    }

    pub(crate) fn count_read(&self) {
        self.inner.page_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_write(&self) {
        self.inner.page_writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_alloc(&self) {
        self.inner.page_allocs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_free(&self) {
        self.inner.page_frees.fetch_add(1, Ordering::Relaxed);
    }
}

/// A pool of fixed-size pages with a freelist. Not itself thread-safe: the
/// owning B-tree wraps it (together with the tree root) in its latch.
#[derive(Debug)]
pub struct PagePool {
    page_size: usize,
    pages: Vec<Option<Box<[u8]>>>,
    free: Vec<PageId>,
    stats: StorageStats,
    /// Simulated per-read latency (spin-waited) — the stand-in for the
    /// paper's disk accesses; zero by default.
    read_latency: Duration,
}

impl PagePool {
    /// Creates an empty pool of `page_size`-byte pages.
    pub fn new(page_size: usize, stats: StorageStats) -> Self {
        Self::with_latency(page_size, stats, Duration::ZERO)
    }

    /// Creates a pool whose reads spin-wait `read_latency` each —
    /// converting page-access counts into wall-clock time the way the
    /// paper's IDE disk did (see DESIGN.md substitutions and CLUSTER2).
    pub fn with_latency(page_size: usize, stats: StorageStats, read_latency: Duration) -> Self {
        PagePool {
            page_size,
            pages: vec![None], // index 0 unused (NO_PAGE)
            free: Vec::new(),
            stats,
            read_latency,
        }
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Allocates a zeroed page.
    pub fn alloc(&mut self) -> PageId {
        self.stats.count_alloc();
        let page = vec![0u8; self.page_size].into_boxed_slice();
        if let Some(id) = self.free.pop() {
            self.pages[id as usize] = Some(page);
            id
        } else {
            self.pages.push(Some(page));
            (self.pages.len() - 1) as PageId
        }
    }

    /// Frees a page back to the pool.
    pub fn free(&mut self, id: PageId) {
        debug_assert!(self.pages[id as usize].is_some(), "double free of page {id}");
        self.stats.count_free();
        self.pages[id as usize] = None;
        self.free.push(id);
    }

    /// Read access to a page (counted; spin-waits the configured
    /// simulated latency).
    pub fn read(&self, id: PageId) -> &[u8] {
        self.stats.count_read();
        // Chaos-test hook: page reads have no error path, so an armed
        // `Error` action degrades to a no-op and only `Delay` injects.
        xtc_failpoint::fire_delay("store.page_read");
        if !self.read_latency.is_zero() {
            let until = std::time::Instant::now() + self.read_latency;
            while std::time::Instant::now() < until {
                std::hint::spin_loop();
            }
        }
        self.pages[id as usize]
            .as_deref()
            .expect("read of freed page")
    }

    /// Write access to a page (counted).
    pub fn write(&mut self, id: PageId) -> &mut [u8] {
        self.stats.count_write();
        self.pages[id as usize]
            .as_deref_mut()
            .expect("write of freed page")
    }

    /// Number of live (allocated, not freed) pages.
    pub fn live_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_reuse() {
        let stats = StorageStats::default();
        let mut pool = PagePool::new(128, stats.clone());
        let a = pool.alloc();
        let b = pool.alloc();
        assert_ne!(a, b);
        assert_ne!(a, NO_PAGE);
        pool.free(a);
        let c = pool.alloc();
        assert_eq!(c, a, "freed pages are reused");
        assert_eq!(pool.live_pages(), 2);
        assert_eq!(stats.page_allocs(), 3);
        assert_eq!(stats.page_frees(), 1);
    }

    #[test]
    fn access_counting() {
        let stats = StorageStats::default();
        let mut pool = PagePool::new(64, stats.clone());
        let p = pool.alloc();
        let _ = pool.read(p);
        let _ = pool.read(p);
        pool.write(p)[0] = 7;
        assert_eq!(stats.page_reads(), 2);
        assert_eq!(stats.page_writes(), 1);
        assert_eq!(pool.read(p)[0], 7);
    }
}
