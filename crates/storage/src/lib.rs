//! # xtc-storage — page-based document storage for XTC
//!
//! Implements the storage layer sketched in §3.1/§3.2 and Figure 6 of
//! *Contest of XML Lock Protocols* (VLDB 2006):
//!
//! * a **B\*-tree** over variable-length byte keys with **front-coded
//!   leaves** (per-key incremental prefix compression with restart
//!   points) — keyed on encoded SPLIDs it stores an XML document in
//!   left-most depth-first (document) order, acting as both *document
//!   index* and *document container* (the chained leaf pages),
//! * an **element index**: a name directory over element names, each entry
//!   owning a node-reference index of SPLIDs,
//! * a **vocabulary** replacing tag names by ≤ 2-byte surrogates inside
//!   node records,
//! * **access statistics** (logical page reads/writes) standing in for the
//!   disk-I/O counts of the paper's testbed (see DESIGN.md, substitutions).
//!
//! The trees are safe for concurrent use (`&self` API, tree-level
//! reader-writer latch). Transactional isolation is *not* this layer's
//! job — the lock manager (`xtc-lock`) serializes logical access.

#![warn(missing_docs)]

mod backend;
mod btree;
mod cuckoo;
mod error;
mod page;
mod pool;
mod vocab;

pub use backend::{crc32, FileBackend, PageBackendConfig, PAGE_HEADER};
pub use btree::{BTree, BTreeConfig, OccupancyReport};
pub use cuckoo::CuckooFilter;
pub use error::StorageError;
pub use pool::{
    EvictPolicy, PagePool, PoolConfig, PoolStats, StorageStats, DEFAULT_CORRELATED_TICKS,
};
pub use vocab::{VocId, Vocabulary};
