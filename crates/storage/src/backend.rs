//! File-backed page store: the durable half of the buffer pool.
//!
//! When a pool is configured with [`PageBackendConfig::File`], every
//! write-back lands in a page file via `pwrite`, each page wrapped in a
//! small CRC-stamped header carrying the page id and the page LSN (the
//! slotted-page layout inside the payload has no spare room, so the
//! header wraps the raw page bytes rather than living inside them).
//! Fault-ins `pread` the slot back and verify the CRC, so a torn or
//! corrupted write is detected at the first re-read instead of being
//! silently served.
//!
//! The file is a *mirror*, not the source of truth: recovery stays
//! logical (ARIES-lite replay from the WAL rebuilds pages), so opening a
//! backend always starts from a truncated file and the pool re-persists
//! pages as they are flushed. What the file buys is realism — write-backs
//! and fault-ins are real device operations with real failure modes —
//! plus end-to-end corruption detection on the read path.

use std::fs::{self, File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use crate::pool::PageId;

/// Magic stamped on every on-disk page header (`XPG1`).
const PAGE_MAGIC: u32 = 0x5850_4731;

/// On-disk per-page header: magic, page id, page LSN, payload CRC32,
/// payload length.
pub const PAGE_HEADER: usize = 4 + 4 + 8 + 4 + 4;

/// How the pool stores page bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum PageBackendConfig {
    /// Simulated storage: pages live in memory only, I/O is a configured
    /// latency charge. The default — deterministic tests depend on it.
    #[default]
    Sim,
    /// Real storage: write-backs `pwrite` CRC-stamped pages into the
    /// file at `path`; fault-ins `pread` and verify them.
    File {
        /// Path of the page file (created/truncated on open).
        path: PathBuf,
    },
}

/// CRC32 (IEEE) over `bytes` — same polynomial the WAL codec uses, kept
/// local so `xtc-storage` stays independent of `xtc-wal`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// An open page file. One per pool (each B*-tree in a `DocStore` gets
/// its own); page `n` lives at byte offset `n * (PAGE_HEADER + page_size)`.
#[derive(Debug)]
pub struct FileBackend {
    file: File,
    page_size: usize,
}

impl FileBackend {
    /// Opens (creating parent directories) and truncates the page file —
    /// the mirror starts empty; the pool re-persists pages as they flush.
    pub fn open(path: &Path, page_size: usize) -> io::Result<FileBackend> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileBackend { file, page_size })
    }

    fn offset(&self, id: PageId) -> u64 {
        id as u64 * (PAGE_HEADER + self.page_size) as u64
    }

    /// `pwrite`s one page slot: header (magic, id, LSN, CRC, len) plus
    /// the raw page bytes.
    pub fn write_page(&self, id: PageId, page_lsn: u64, data: &[u8]) -> io::Result<()> {
        debug_assert_eq!(data.len(), self.page_size);
        let mut buf = Vec::with_capacity(PAGE_HEADER + data.len());
        buf.extend_from_slice(&PAGE_MAGIC.to_le_bytes());
        buf.extend_from_slice(&id.to_le_bytes());
        buf.extend_from_slice(&page_lsn.to_le_bytes());
        buf.extend_from_slice(&crc32(data).to_le_bytes());
        buf.extend_from_slice(&(data.len() as u32).to_le_bytes());
        buf.extend_from_slice(data);
        self.file.write_all_at(&buf, self.offset(id))
    }

    /// `pread`s one page slot back and verifies magic, id, length and
    /// CRC. Returns the persisted page LSN and bytes.
    pub fn read_page(&self, id: PageId) -> io::Result<(u64, Vec<u8>)> {
        let mut buf = vec![0u8; PAGE_HEADER + self.page_size];
        self.file.read_exact_at(&mut buf, self.offset(id))?;
        let word = |at: usize| u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
        let bad = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("page {id}: corrupt on-disk frame ({what})"),
            )
        };
        if word(0) != PAGE_MAGIC {
            return Err(bad("magic"));
        }
        if word(4) != id {
            return Err(bad("page id"));
        }
        let page_lsn = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        if word(20) as usize != self.page_size {
            return Err(bad("length"));
        }
        let crc_stored = word(16);
        let data = buf.split_off(PAGE_HEADER);
        if crc_stored != crc32(&data) {
            return Err(bad("crc"));
        }
        Ok((page_lsn, data))
    }

    /// `fdatasync`s the page file (checkpoint integration: the WAL syncs
    /// first, then flushed pages are made durable too).
    pub fn sync(&self) -> io::Result<()> {
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "xtc-backend-{}-{name}.pages",
            std::process::id()
        ))
    }

    #[test]
    fn pages_round_trip_with_lsn() {
        let path = tmp_path("roundtrip");
        let be = FileBackend::open(&path, 128).unwrap();
        let page: Vec<u8> = (0..128).map(|i| i as u8).collect();
        be.write_page(3, 42, &page).unwrap();
        be.write_page(1, 7, &[0xAB; 128]).unwrap();
        let (lsn, data) = be.read_page(3).unwrap();
        assert_eq!(lsn, 42);
        assert_eq!(data, page);
        let (lsn, data) = be.read_page(1).unwrap();
        assert_eq!(lsn, 7);
        assert_eq!(data, vec![0xAB; 128]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corruption_is_detected_by_crc() {
        let path = tmp_path("corrupt");
        let be = FileBackend::open(&path, 64).unwrap();
        be.write_page(2, 9, &[5; 64]).unwrap();
        // Flip one payload byte behind the backend's back.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        let off = 2 * (PAGE_HEADER as u64 + 64) + PAGE_HEADER as u64 + 10;
        f.write_all_at(&[0xFF], off).unwrap();
        let err = be.read_page(2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("crc"), "{err}");
        // An unwritten slot reads as missing/invalid, never as data.
        assert!(be.read_page(9).is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // Standard IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
