//! A B\*-tree over variable-length byte keys with front-coded leaves
//! (restart-point incremental key compression, see [`crate::page`]) and a
//! doubly linked leaf chain.
//!
//! Keyed on encoded SPLIDs this is the paper's *document index* +
//! *document container* in one structure (Figure 6a): leaves hold the
//! node records in document order; the chained pages are the container.
//! The same structure also backs the element index and the ID attribute
//! index (Figure 6b).

use crate::error::StorageError;
use crate::page;
use crate::pool::{PageId, PagePool, StorageStats, NO_PAGE};
use parking_lot::RwLock;

/// Tuning knobs for a [`BTree`].
#[derive(Debug, Clone)]
pub struct BTreeConfig {
    /// Page size in bytes (default 8192).
    pub page_size: usize,
    /// Maximum key length (default 128, the paper's "key length < 128B"
    /// B-tree restriction).
    pub max_key: usize,
    /// Simulated per-page-read latency (default zero) — see
    /// [`PagePool::with_latency`].
    pub read_latency: std::time::Duration,
    /// Buffer residency budget: at most this many pages stay buffered;
    /// the excess is evicted under `policy` (`None` = unbounded).
    pub max_resident: Option<usize>,
    /// Simulated per-write-back latency (default zero), charged as
    /// `page_write_us` virtual time.
    pub write_latency: std::time::Duration,
    /// Extra simulated latency charged only on buffer misses (default
    /// zero) — the storage bench's price for a fault-in.
    pub miss_latency: std::time::Duration,
    /// Eviction policy under the residency budget (default:
    /// scan-resistant LRU-2).
    pub policy: crate::EvictPolicy,
    /// Page-byte backend: simulated memory (default) or a real page file.
    pub backend: crate::PageBackendConfig,
    /// Hit/miss counting window — see [`crate::PoolConfig::burst_ticks`].
    pub burst_ticks: u64,
}

impl Default for BTreeConfig {
    fn default() -> Self {
        BTreeConfig {
            page_size: 8192,
            max_key: 128,
            read_latency: std::time::Duration::ZERO,
            max_resident: None,
            write_latency: std::time::Duration::ZERO,
            miss_latency: std::time::Duration::ZERO,
            policy: crate::EvictPolicy::default(),
            backend: crate::PageBackendConfig::Sim,
            burst_ticks: crate::DEFAULT_CORRELATED_TICKS,
        }
    }
}

/// Storage occupancy summary — backs the paper's ">96 % storage occupancy"
/// claim reproduction (§3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyReport {
    /// Live pages (leaf + inner).
    pub pages: usize,
    /// Leaf pages.
    pub leaf_pages: usize,
    /// Inner pages.
    pub inner_pages: usize,
    /// Bytes in use across live pages (headers + slots + cells).
    pub used_bytes: usize,
    /// Total bytes of live pages.
    pub total_bytes: usize,
    /// Bytes of key material physically stored in leaves (restart keys +
    /// front-coded suffixes).
    pub key_bytes_stored: usize,
    /// Bytes the full (uncompressed) keys would occupy.
    pub key_bytes_logical: usize,
}

impl OccupancyReport {
    /// Fraction of page space in use.
    pub fn occupancy(&self) -> f64 {
        if self.total_bytes == 0 {
            return 1.0;
        }
        self.used_bytes as f64 / self.total_bytes as f64
    }

    /// Average physically stored bytes per key (after prefix compression).
    pub fn stored_bytes_per_key(&self, keys: usize) -> f64 {
        if keys == 0 {
            return 0.0;
        }
        self.key_bytes_stored as f64 / keys as f64
    }
}

struct Inner {
    pool: PagePool,
    root: PageId,
    len: usize,
}

/// The B\*-tree. All operations take `&self`; a tree-level reader-writer
/// latch serializes physical access (see DESIGN.md §5 — logical lock waits
/// in the experiments dominate page latching by orders of magnitude).
pub struct BTree {
    inner: RwLock<Inner>,
    stats: StorageStats,
    config: BTreeConfig,
}

/// Result of a leaf/subtree mutation. Inserts *and deletes* can split a
/// page: removing an interior slot shifts every later restart position,
/// and the re-encoded page may exceed capacity when formerly front-coded
/// keys land on restart points (full keys).
enum MutOutcome {
    Done(Option<Vec<u8>>),
    Split {
        sep: Vec<u8>,
        right: PageId,
        old: Option<Vec<u8>>,
    },
}

impl BTree {
    /// Creates an empty tree with default configuration.
    pub fn new() -> Self {
        Self::with_config(BTreeConfig::default(), StorageStats::default())
    }

    /// Creates an empty tree with explicit configuration and a shared
    /// statistics handle.
    pub fn with_config(config: BTreeConfig, stats: StorageStats) -> Self {
        assert!(config.page_size >= 256, "page size too small");
        assert!(
            config.max_key <= u8::MAX as usize,
            "front-coded cells store key lengths in one byte (the paper's \
             'key length < 128B' B-tree restriction)"
        );
        let mut pool = PagePool::with_config(
            crate::PoolConfig {
                page_size: config.page_size,
                read_latency: config.read_latency,
                write_latency: config.write_latency,
                miss_latency: config.miss_latency,
                max_resident: config.max_resident,
                policy: config.policy,
                backend: config.backend.clone(),
                burst_ticks: config.burst_ticks,
            },
            stats.clone(),
        );
        let root = pool.alloc();
        page::init_leaf(pool.write(root), NO_PAGE, NO_PAGE);
        pool.pin(root);
        BTree {
            inner: RwLock::new(Inner { pool, root, len: 0 }),
            stats,
            config,
        }
    }

    fn max_val(&self) -> usize {
        self.config.page_size / 4
    }

    /// Shared page-access statistics.
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.inner.read().len
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the value stored under `key`.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let g = self.inner.read();
        let leaf = descend_to_leaf(&g.pool, g.root, key);
        let p = g.pool.read(leaf);
        match page::leaf_search(p, key) {
            Ok(i) => Some(page::leaf_val(p, i).to_vec()),
            Err(_) => None,
        }
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Inserts or replaces; returns the previous value, if any.
    pub fn insert(&self, key: &[u8], val: &[u8]) -> Result<Option<Vec<u8>>, StorageError> {
        if key.len() > self.config.max_key {
            return Err(StorageError::KeyTooLarge {
                len: key.len(),
                max: self.config.max_key,
            });
        }
        if val.len() > self.max_val() {
            return Err(StorageError::ValueTooLarge {
                len: val.len(),
                max: self.max_val(),
            });
        }
        let mut g = self.inner.write();
        let root = g.root;
        let old = match insert_rec(&mut g, root, key, val) {
            MutOutcome::Done(old) => old,
            MutOutcome::Split { sep, right, old } => {
                grow_root(&mut g, sep, right);
                old
            }
        };
        if old.is_none() {
            g.len += 1;
        }
        Ok(old)
    }

    /// Removes `key`; returns the previous value, if any.
    pub fn remove(&self, key: &[u8]) -> Option<Vec<u8>> {
        let mut g = self.inner.write();
        let root = g.root;
        let old = match delete_rec(&mut g, root, key)? {
            MutOutcome::Done(old) => old,
            MutOutcome::Split { sep, right, old } => {
                grow_root(&mut g, sep, right);
                old
            }
        };
        g.len -= 1;
        collapse_root(&mut g);
        old
    }

    /// Smallest entry with key strictly greater than `key`.
    pub fn next_after(&self, key: &[u8]) -> Option<(Vec<u8>, Vec<u8>)> {
        let g = self.inner.read();
        let leaf = descend_to_leaf(&g.pool, g.root, key);
        let p = g.pool.read(leaf);
        let pos = match page::leaf_search(p, key) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        entry_at_or_follow(&g.pool, leaf, pos)
    }

    /// Greatest entry with key strictly less than `key`.
    pub fn prev_before(&self, key: &[u8]) -> Option<(Vec<u8>, Vec<u8>)> {
        let g = self.inner.read();
        let leaf = descend_to_leaf(&g.pool, g.root, key);
        let p = g.pool.read(leaf);
        let pos = match page::leaf_search(p, key) {
            Ok(i) | Err(i) => i,
        };
        if pos > 0 {
            let p = g.pool.read(leaf);
            return Some((page::leaf_key(p, pos - 1), page::leaf_val(p, pos - 1).to_vec()));
        }
        let mut cur = page::prev_link(p);
        while cur != NO_PAGE {
            let p = g.pool.read(cur);
            let n = page::count(p);
            if n > 0 {
                return Some((page::leaf_key(p, n - 1), page::leaf_val(p, n - 1).to_vec()));
            }
            cur = page::prev_link(p);
        }
        None
    }

    /// The smallest entry.
    pub fn first(&self) -> Option<(Vec<u8>, Vec<u8>)> {
        let g = self.inner.read();
        let mut cur = g.root;
        loop {
            let p = g.pool.read(cur);
            if page::page_type(p) == page::TYPE_LEAF {
                return entry_at_or_follow(&g.pool, cur, 0);
            }
            cur = page::link(p);
        }
    }

    /// The greatest entry.
    pub fn last(&self) -> Option<(Vec<u8>, Vec<u8>)> {
        let g = self.inner.read();
        let mut cur = g.root;
        loop {
            let p = g.pool.read(cur);
            if page::page_type(p) == page::TYPE_LEAF {
                let n = page::count(p);
                if n == 0 {
                    return None; // only the empty root leaf
                }
                return Some((page::leaf_key(p, n - 1), page::leaf_val(p, n - 1).to_vec()));
            }
            let n = page::count(p);
            cur = if n == 0 {
                page::link(p)
            } else {
                page::inner_cell(p, n - 1).1
            };
        }
    }

    /// All entries with `lo < key < hi`, in order, collected under a single
    /// read latch. This is the subtree-scan primitive (bounds from
    /// `xtc_splid::subtree_upper_bound`).
    pub fn scan_range(&self, lo_excl: &[u8], hi_excl: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        self.for_each_in_range(lo_excl, hi_excl, |k, v| {
            out.push((k.to_vec(), v.to_vec()));
            true
        });
        out
    }

    /// Streams entries with `lo < key < hi` to `f`; stop early by returning
    /// `false`.
    pub fn for_each_in_range(
        &self,
        lo_excl: &[u8],
        hi_excl: &[u8],
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) {
        let g = self.inner.read();
        let leaf = descend_to_leaf(&g.pool, g.root, lo_excl);
        let p = g.pool.read(leaf);
        let mut pos = match page::leaf_search(p, lo_excl) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        let mut cur = leaf;
        loop {
            let p = g.pool.read(cur);
            let mut done = false;
            page::leaf_for_each_from(p, pos, |_, k, v| {
                if k >= hi_excl || !f(k, v) {
                    done = true;
                    return false;
                }
                true
            });
            if done {
                return;
            }
            cur = page::link(p);
            if cur == NO_PAGE {
                return;
            }
            pos = 0;
        }
    }

    /// Deletes all entries with `lo < key < hi`; returns how many were
    /// removed. Used for subtree deletion.
    pub fn remove_range(&self, lo_excl: &[u8], hi_excl: &[u8]) -> usize {
        // Collect first (cheap: keys only), then delete under one latch.
        let keys: Vec<Vec<u8>> = {
            let mut ks = Vec::new();
            self.for_each_in_range(lo_excl, hi_excl, |k, _| {
                ks.push(k.to_vec());
                true
            });
            ks
        };
        let mut g = self.inner.write();
        let mut removed = 0;
        for k in &keys {
            let root = g.root;
            match delete_rec(&mut g, root, k) {
                None => {}
                Some(MutOutcome::Done(_)) => {
                    g.len -= 1;
                    removed += 1;
                }
                Some(MutOutcome::Split { sep, right, .. }) => {
                    grow_root(&mut g, sep, right);
                    g.len -= 1;
                    removed += 1;
                }
            }
            collapse_root(&mut g);
        }
        removed
    }

    /// Writes back every dirty page whose covering log record is durable
    /// (`page_lsn <= durable_lsn`); see [`PagePool::flush_dirty`].
    /// Returns how many pages were flushed.
    pub fn flush_dirty(&self, durable_lsn: u64) -> usize {
        self.inner.write().pool.flush_dirty(durable_lsn)
    }

    /// Buffer-manager snapshot (hits, misses, dirty count, flushes,
    /// evictions) for this tree's pool.
    pub fn pool_stats(&self) -> crate::pool::PoolStats {
        self.inner.read().pool.pool_stats()
    }

    /// Walks every live page and reports space usage.
    pub fn occupancy(&self) -> OccupancyReport {
        let g = self.inner.read();
        let mut rep = OccupancyReport {
            pages: 0,
            leaf_pages: 0,
            inner_pages: 0,
            used_bytes: 0,
            total_bytes: 0,
            key_bytes_stored: 0,
            key_bytes_logical: 0,
        };
        visit_pages(&g.pool, g.root, &mut rep);
        rep
    }
}

impl Default for BTree {
    fn default() -> Self {
        BTree::new()
    }
}

fn visit_pages(pool: &PagePool, page_id: PageId, rep: &mut OccupancyReport) {
    let p = pool.read(page_id);
    rep.pages += 1;
    rep.total_bytes += p.len();
    rep.used_bytes += page::used_bytes(p);
    if page::page_type(p) == page::TYPE_LEAF {
        rep.leaf_pages += 1;
        let (stored, logical) = page::leaf_key_byte_stats(p);
        rep.key_bytes_stored += stored;
        rep.key_bytes_logical += logical;
    } else {
        rep.inner_pages += 1;
        let children: Vec<PageId> = std::iter::once(page::link(p))
            .chain(page::inner_entries(p).into_iter().map(|(_, c)| c))
            .collect();
        for c in children {
            visit_pages(pool, c, rep);
        }
    }
}

fn descend_to_leaf(pool: &PagePool, mut cur: PageId, key: &[u8]) -> PageId {
    loop {
        let p = pool.read(cur);
        if page::page_type(p) == page::TYPE_LEAF {
            return cur;
        }
        cur = page::inner_descend(p, key).0;
    }
}

fn entry_at_or_follow(pool: &PagePool, mut leaf: PageId, mut pos: usize) -> Option<(Vec<u8>, Vec<u8>)> {
    loop {
        let p = pool.read(leaf);
        if pos < page::count(p) {
            return Some((page::leaf_key(p, pos), page::leaf_val(p, pos).to_vec()));
        }
        leaf = page::link(p);
        if leaf == NO_PAGE {
            return None;
        }
        pos = 0;
    }
}

/// Grows a new root after the old root split.
fn grow_root(g: &mut Inner, sep: Vec<u8>, right: PageId) {
    let new_root = g.pool.alloc();
    let old_root = g.root;
    page::init_inner(g.pool.write(new_root), old_root);
    page::inner_insert(g.pool.write(new_root), &sep, right);
    g.root = new_root;
    g.pool.unpin(old_root);
    g.pool.pin(new_root);
}

/// Adds separator `sep` → `right` to inner page `cur`, splitting it when
/// full. Returns the promoted `(separator, new right sibling)` on split.
fn inner_add_child(g: &mut Inner, cur: PageId, sep: Vec<u8>, right: PageId) -> Option<(Vec<u8>, PageId)> {
    if page::inner_fits(g.pool.read(cur), &sep) {
        page::inner_insert(g.pool.write(cur), &sep, right);
        return None;
    }
    // Split this inner page.
    let leftmost = page::link(g.pool.read(cur));
    let mut entries = page::inner_entries(g.pool.read(cur));
    let at = entries
        .binary_search_by(|(k, _)| k.as_slice().cmp(&sep))
        .unwrap_err();
    entries.insert(at, (sep, right));
    let mid = entries.len() / 2;
    let (promoted, right_leftmost) = (entries[mid].0.clone(), entries[mid].1);
    let new_right = g.pool.alloc();
    page::inner_rebuild(g.pool.write(new_right), right_leftmost, &entries[mid + 1..]);
    page::inner_rebuild(g.pool.write(cur), leftmost, &entries[..mid]);
    Some((promoted, new_right))
}

fn insert_rec(g: &mut Inner, cur: PageId, key: &[u8], val: &[u8]) -> MutOutcome {
    let p = g.pool.read(cur);
    if page::page_type(p) == page::TYPE_LEAF {
        return leaf_insert(g, cur, key, val);
    }
    let (child, _) = page::inner_descend(p, key);
    match insert_rec(g, child, key, val) {
        MutOutcome::Done(old) => MutOutcome::Done(old),
        MutOutcome::Split { sep, right, old } => match inner_add_child(g, cur, sep, right) {
            None => MutOutcome::Done(old),
            Some((promoted, new_right)) => MutOutcome::Split {
                sep: promoted,
                right: new_right,
                old,
            },
        },
    }
}

fn leaf_insert(g: &mut Inner, cur: PageId, key: &[u8], val: &[u8]) -> MutOutcome {
    let p = g.pool.read(cur);
    match page::leaf_search(p, key) {
        Ok(i) => {
            let old = page::leaf_val(p, i).to_vec();
            if !page::leaf_replace_val_at(g.pool.write(cur), i, val) {
                // Rebuild with the new value; may overflow → split path.
                let mut entries = page::leaf_entries(g.pool.read(cur));
                entries[i].1 = val.to_vec();
                return rebuild_or_split(g, cur, entries, Some(old), false);
            }
            MutOutcome::Done(Some(old))
        }
        Err(i) => {
            // Tail append is the in-place fast path (document-order
            // loading): front coding extends without moving any slot, so
            // restart positions stay put.
            if i == page::count(p) && page::leaf_append_fits(p, key, val).is_some() {
                page::leaf_append(g.pool.write(cur), key, val);
                return MutOutcome::Done(None);
            }
            // Interior insert (or full page): re-encode from the entries —
            // successor front coding and restart positions depend on slot
            // indexes. Compacts dead cell space as a side effect.
            let mut entries = page::leaf_entries(g.pool.read(cur));
            let append = i == entries.len();
            entries.insert(i, (key.to_vec(), val.to_vec()));
            rebuild_or_split(g, cur, entries, None, append)
        }
    }
}

/// Rebuilds `cur` from `entries`, splitting into two chained leaves when
/// they no longer fit in one page.
///
/// `append` marks the B*-tree asymmetric-split case: the overflowing
/// insert was at the end of this leaf (sequential, document-order
/// loading). The split then keeps the left page nearly full instead of
/// half full — this is what sustains the paper's > 96 % storage occupancy
/// for documents stored in document order (§3.1).
fn rebuild_or_split(
    g: &mut Inner,
    cur: PageId,
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    old: Option<Vec<u8>>,
    append: bool,
) -> MutOutcome {
    // Chaos-test hook: `Delay` stretches the window in which a page split
    // holds the tree latch. Splits sit below the undo-log granularity, so
    // an `Error` cannot unwind from here — instead it poisons the shared
    // stats handle, which the transaction layer converts into a WAL crash
    // after the mutation returns (the mid-split-kill scenario).
    if xtc_failpoint::fire_delay_in(g.pool.stats().failpoint_scope(), "btree.split") {
        g.pool.stats().poison();
    }
    let page_size = g.pool.page_size();
    let next = page::link(g.pool.read(cur));
    let prev = page::prev_link(g.pool.read(cur));
    if page::leaf_build_size(&entries) <= page_size {
        page::leaf_rebuild(g.pool.write(cur), &entries, next, prev);
        return MutOutcome::Done(old);
    }
    let preferred = if append {
        // Keep everything but the new entry on the (full) left page.
        entries.len() - 1
    } else {
        // Split by cumulative byte size.
        let total: usize = entries.iter().map(|(k, v)| k.len() + v.len() + 6).sum();
        let mut acc = 0usize;
        let mut m = entries.len() / 2;
        for (i, (k, v)) in entries.iter().enumerate() {
            acc += k.len() + v.len() + 6;
            if acc * 2 >= total {
                m = (i + 1).min(entries.len() - 1).max(1);
                break;
            }
        }
        m
    };
    let mid = choose_split(&entries, preferred, page_size);
    let right = g.pool.alloc();
    let sep = entries[mid].0.clone();
    page::leaf_rebuild(g.pool.write(right), &entries[mid..], next, cur);
    page::leaf_rebuild(g.pool.write(cur), &entries[..mid], right, prev);
    if next != NO_PAGE {
        page::set_prev_link(g.pool.write(next), right);
    }
    MutOutcome::Split { sep, right, old }
}

/// Picks a split point for an overflowing leaf such that **both** halves
/// fit their pages, preferring `preferred`.
///
/// Re-encoding a half changes its size in either direction: its first
/// entry becomes a restart point (full key — inflation, the old
/// prefix-loss hazard), while restart positions inside the half shift so
/// formerly-full restart keys may front-code away (deflation). Walking
/// `preferred` left only — the pre-front-coding guard — can therefore
/// leave the *right* half overflowing; probe outward in both directions
/// instead and take the closest valid point.
fn choose_split(entries: &[(Vec<u8>, Vec<u8>)], preferred: usize, page_size: usize) -> usize {
    let n = entries.len();
    let fits = |m: usize| {
        page::leaf_build_size(&entries[..m]) <= page_size
            && page::leaf_build_size(&entries[m..]) <= page_size
    };
    for delta in 0..n {
        let lo = preferred.saturating_sub(delta);
        if (1..n).contains(&lo) && fits(lo) {
            return lo;
        }
        let hi = preferred + delta;
        if delta > 0 && (1..n).contains(&hi) && fits(hi) {
            return hi;
        }
    }
    panic!(
        "no valid leaf split: {} entries cannot divide into two pages of {} bytes \
         (key/value limits should make this unreachable)",
        n, page_size
    );
}

fn delete_rec(g: &mut Inner, cur: PageId, key: &[u8]) -> Option<MutOutcome> {
    let p = g.pool.read(cur);
    if page::page_type(p) == page::TYPE_LEAF {
        let i = page::leaf_search(p, key).ok()?;
        let n = page::count(p);
        let old = page::leaf_val(p, i).to_vec();
        if i == n - 1 {
            // Tail removal keeps every restart position — O(1) in place.
            page::leaf_remove_at(g.pool.write(cur), i);
            return Some(MutOutcome::Done(Some(old)));
        }
        // Interior removal re-encodes the page; the shifted restart
        // positions can inflate it past capacity, so route through the
        // split-capable rebuild.
        let mut entries = page::leaf_entries(p);
        entries.remove(i);
        return Some(rebuild_or_split(g, cur, entries, Some(old), false));
    }
    let (child, sep_idx) = page::inner_descend(p, key);
    match delete_rec(g, child, key)? {
        MutOutcome::Done(old) => {
            fix_child(g, cur, child, sep_idx);
            Some(MutOutcome::Done(old))
        }
        MutOutcome::Split { sep, right, old } => {
            // The child grew (delete-induced split): no underflow fixes
            // apply; just register the new sibling, propagating splits.
            match inner_add_child(g, cur, sep, right) {
                None => Some(MutOutcome::Done(old)),
                Some((promoted, new_right)) => Some(MutOutcome::Split {
                    sep: promoted,
                    right: new_right,
                    old,
                }),
            }
        }
    }
}

/// Post-deletion maintenance: frees empty children, collapses inner pages
/// down to a single child, and opportunistically merges underfull leaves
/// with their right sibling under the same parent.
fn fix_child(g: &mut Inner, parent: PageId, child: PageId, sep_idx: Option<usize>) {
    let (is_leaf, child_count, child_used) = {
        let p = g.pool.read(child);
        (
            page::page_type(p) == page::TYPE_LEAF,
            page::count(p),
            page::used_bytes(p),
        )
    };
    if child_count == 0 {
        if is_leaf {
            unlink_leaf(g, child);
        } else {
            // An inner page holding only its leftmost child: splice the
            // grandchild into the parent and free the inner page.
            let grandchild = page::link(g.pool.read(child));
            replace_child(g, parent, sep_idx, grandchild);
            g.pool.free(child);
            return;
        }
        remove_child_ref(g, parent, sep_idx);
        g.pool.free(child);
        return;
    }
    if is_leaf && child_used < g.pool.page_size() / 4 {
        try_merge_with_right(g, parent, child, sep_idx);
    }
}

fn unlink_leaf(g: &mut Inner, leaf: PageId) {
    let (prev, next) = {
        let p = g.pool.read(leaf);
        (page::prev_link(p), page::link(p))
    };
    if prev != NO_PAGE {
        page::set_link(g.pool.write(prev), next);
    }
    if next != NO_PAGE {
        page::set_prev_link(g.pool.write(next), prev);
    }
}

/// Removes the reference to a (freed) child from `parent`.
fn remove_child_ref(g: &mut Inner, parent: PageId, sep_idx: Option<usize>) {
    match sep_idx {
        Some(i) => page::inner_remove_at(g.pool.write(parent), i),
        None => {
            // Freed the leftmost child: promote the first separator's child.
            let p = g.pool.read(parent);
            debug_assert!(page::count(p) > 0, "inner page lost its only child");
            let (_, first_child) = page::inner_cell(p, 0);
            let pw = g.pool.write(parent);
            page::set_link(pw, first_child);
            page::inner_remove_at(pw, 0);
        }
    }
}

/// Replaces the child reference at `sep_idx` with `new_child`.
fn replace_child(g: &mut Inner, parent: PageId, sep_idx: Option<usize>, new_child: PageId) {
    match sep_idx {
        None => page::set_link(g.pool.write(parent), new_child),
        Some(i) => {
            let (key, _) = {
                let p = g.pool.read(parent);
                let (k, c) = page::inner_cell(p, i);
                (k.to_vec(), c)
            };
            page::inner_remove_at(g.pool.write(parent), i);
            page::inner_insert(g.pool.write(parent), &key, new_child);
        }
    }
}

fn try_merge_with_right(g: &mut Inner, parent: PageId, child: PageId, sep_idx: Option<usize>) {
    // Identify the right sibling under the same parent and the separator
    // that owns it.
    let right_sep = match sep_idx {
        None => 0,
        Some(i) => i + 1,
    };
    let right = {
        let p = g.pool.read(parent);
        if right_sep >= page::count(p) {
            return; // child is the last under this parent
        }
        page::inner_cell(p, right_sep).1
    };
    if page::page_type(g.pool.read(right)) != page::TYPE_LEAF {
        return;
    }
    let mut entries = page::leaf_entries(g.pool.read(child));
    entries.extend(page::leaf_entries(g.pool.read(right)));
    if page::leaf_build_size(&entries) > g.pool.page_size() * 7 / 8 {
        return; // merged page would be too full to absorb further inserts
    }
    let next = page::link(g.pool.read(right));
    let prev = page::prev_link(g.pool.read(child));
    page::leaf_rebuild(g.pool.write(child), &entries, next, prev);
    if next != NO_PAGE {
        page::set_prev_link(g.pool.write(next), child);
    }
    g.pool.free(right);
    page::inner_remove_at(g.pool.write(parent), right_sep);
}

fn collapse_root(g: &mut Inner) {
    loop {
        let p = g.pool.read(g.root);
        if page::page_type(p) == page::TYPE_LEAF || page::count(p) > 0 {
            return;
        }
        let only_child = page::link(p);
        let old_root = g.root;
        g.root = only_child;
        g.pool.free(old_root);
        g.pool.pin(only_child);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tree() -> BTree {
        BTree::with_config(
            BTreeConfig {
                page_size: 256,
                max_key: 64,
                ..BTreeConfig::default()
            },
            StorageStats::default(),
        )
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key-{i:06}").into_bytes()
    }

    #[test]
    fn insert_get_overwrite() {
        let t = BTree::new();
        assert_eq!(t.insert(b"a", b"1").unwrap(), None);
        assert_eq!(t.insert(b"a", b"2").unwrap(), Some(b"1".to_vec()));
        assert_eq!(t.get(b"a"), Some(b"2".to_vec()));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(b"b"), None);
    }

    #[test]
    fn many_inserts_cause_splits_and_stay_ordered() {
        let t = small_tree();
        let n = 2000u32;
        for i in 0..n {
            t.insert(&key(i * 7 % n), &i.to_le_bytes()).unwrap();
        }
        assert_eq!(t.len(), n as usize);
        // Full ordered iteration via the leaf chain.
        let all = t.scan_range(b"", b"\xff");
        assert_eq!(all.len(), n as usize);
        for w in all.windows(2) {
            assert!(w[0].0 < w[1].0, "entries out of order");
        }
        let rep = t.occupancy();
        assert!(rep.inner_pages >= 1, "splits should have produced inner pages");
        for i in 0..n {
            assert!(t.get(&key(i)).is_some(), "missing key {i}");
        }
    }

    #[test]
    fn delete_all_collapses_tree() {
        let t = small_tree();
        let n = 1200u32;
        for i in 0..n {
            t.insert(&key(i), b"v").unwrap();
        }
        for i in 0..n {
            assert_eq!(t.remove(&key(i)), Some(b"v".to_vec()), "key {i}");
        }
        assert_eq!(t.len(), 0);
        assert_eq!(t.first(), None);
        assert_eq!(t.last(), None);
        let rep = t.occupancy();
        assert_eq!(rep.pages, 1, "tree should collapse to a single root leaf");
        assert_eq!(t.remove(b"nope"), None);
    }

    #[test]
    fn next_after_and_prev_before() {
        let t = small_tree();
        for i in (0..100u32).map(|i| i * 2) {
            t.insert(&key(i), b"").unwrap();
        }
        assert_eq!(t.next_after(&key(10)).unwrap().0, key(12));
        assert_eq!(t.next_after(&key(11)).unwrap().0, key(12));
        assert_eq!(t.next_after(&key(198)), None);
        assert_eq!(t.prev_before(&key(10)).unwrap().0, key(8));
        assert_eq!(t.prev_before(&key(11)).unwrap().0, key(10));
        assert_eq!(t.prev_before(&key(0)), None);
        assert_eq!(t.first().unwrap().0, key(0));
        assert_eq!(t.last().unwrap().0, key(198));
    }

    #[test]
    fn range_scan_and_range_delete() {
        let t = small_tree();
        for i in 0..500u32 {
            t.insert(&key(i), &i.to_le_bytes()).unwrap();
        }
        let hits = t.scan_range(&key(100), &key(110));
        assert_eq!(hits.len(), 9, "exclusive bounds");
        assert_eq!(hits[0].0, key(101));
        assert_eq!(hits[8].0, key(109));
        let removed = t.remove_range(&key(100), &key(200));
        assert_eq!(removed, 99);
        assert_eq!(t.len(), 500 - 99);
        assert!(t.get(&key(150)).is_none());
        assert!(t.get(&key(100)).is_some());
        assert!(t.get(&key(200)).is_some());
    }

    #[test]
    fn oversized_keys_and_values_rejected() {
        let t = small_tree();
        assert!(matches!(
            t.insert(&[0u8; 65], b"v"),
            Err(StorageError::KeyTooLarge { .. })
        ));
        assert!(matches!(
            t.insert(b"k", &[0u8; 100]),
            Err(StorageError::ValueTooLarge { .. })
        ));
    }

    #[test]
    fn occupancy_stays_high_under_random_updates() {
        let t = BTree::with_config(
            BTreeConfig::default(),
            StorageStats::default(),
        );
        // Sequential build (document order) then random value updates —
        // the §3.1 workload shape.
        for i in 0..20_000u32 {
            t.insert(&key(i), &[0u8; 16]).unwrap();
        }
        for i in (0..20_000u32).step_by(3) {
            t.insert(&key(i), &[1u8; 12]).unwrap();
        }
        let rep = t.occupancy();
        assert!(
            rep.occupancy() > 0.5,
            "occupancy {:.2} collapsed",
            rep.occupancy()
        );
    }

    #[test]
    fn prefix_compression_shrinks_keys() {
        let t = BTree::new();
        for i in 0..5_000u32 {
            // Long shared prefix, short distinct tail — the SPLID shape.
            let k = format!("shared/document/prefix/{i:08}");
            t.insert(k.as_bytes(), b"v").unwrap();
        }
        let rep = t.occupancy();
        assert!(
            rep.key_bytes_stored * 2 < rep.key_bytes_logical,
            "prefix compression should at least halve stored key bytes \
             ({} vs {})",
            rep.key_bytes_stored,
            rep.key_bytes_logical
        );
    }

    #[test]
    fn interleaved_insert_delete_model_check() {
        use std::collections::BTreeMap;
        let t = small_tree();
        let mut model = BTreeMap::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for step in 0..30_000u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = key((x % 700) as u32);
            if x.is_multiple_of(3) {
                let a = t.remove(&k);
                let b = model.remove(&k);
                assert_eq!(a, b, "step {step}");
            } else {
                let v = (step as u64).to_le_bytes().to_vec();
                let a = t.insert(&k, &v).unwrap();
                let b = model.insert(k, v);
                assert_eq!(a, b, "step {step}");
            }
        }
        assert_eq!(t.len(), model.len());
        let all = t.scan_range(b"", b"\xff");
        let expect: Vec<_> = model.into_iter().collect();
        assert_eq!(all, expect);
    }
}
