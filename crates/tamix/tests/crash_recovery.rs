//! Crash–recovery matrix: every protocol in the contest × every kill
//! site, over the TaMix bib document. Only compiled with the
//! `failpoints` feature (`cargo test -p xtc-tamix --features failpoints`).
//!
//! Each scenario runs concurrent writers against a WAL-backed database,
//! kills the engine at an armed failpoint (at the commit record, inside
//! the group-commit flush — leaving a torn tail — or mid-B*-tree split),
//! recovers from the durable log prefix, and asserts the contract:
//!
//! 1. every transaction whose commit returned `Ok` is present,
//! 2. every transaction that failed cleanly (no commit attempt reached
//!    the log) is absent,
//! 3. transactions that died inside the commit flush are allowed either
//!    fate, but never a partial one,
//! 4. the recovered secondary indexes agree with the document.

#![cfg(feature = "failpoints")]

use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;
use xtc_core::wal::WalConfig;
use xtc_core::{recover_from, IsolationLevel, RetryPolicy, XtcConfig, XtcDb, XtcError};
use xtc_failpoint::FailAction;
use xtc_protocols::ALL_PROTOCOLS;
use xtc_tamix::{bib, BibConfig};

/// Per-scenario watchdog (33 scenarios share the machine).
const WATCHDOG: Duration = Duration::from_secs(60);

/// The failpoint registry is process-global; tests arming it must not
/// overlap (`cargo test` runs `#[test]` functions on multiple threads).
static STORM_LOCK: Mutex<()> = Mutex::new(());

const KILL_SITES: [&str; 3] = ["wal.commit", "wal.flush", "btree.split"];

const WORKERS: usize = 3;
const MARKERS: usize = 4;

/// How each writer's transaction ended, keyed by its unique marker name.
enum Fate {
    /// `commit()` returned `Ok`: durable, must survive recovery.
    Committed,
    /// Failed cleanly before a commit record could exist: must not
    /// survive recovery.
    Absent,
    /// Died inside the commit protocol (`XtcError::Wal`): the commit
    /// record may or may not sit in the durable prefix — either fate is
    /// correct.
    Unknown,
}

fn crash_scenario(proto: &str, site: &str, seed: u64) -> (bool, bool) {
    let cfg = BibConfig::tiny();
    let db = Arc::new(XtcDb::new(XtcConfig {
        protocol: proto.to_string(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 4,
        lock_timeout: Duration::from_secs(5),
        wal: Some(WalConfig::default()),
        ..XtcConfig::default()
    }));
    // Bulk generation bypasses transactions (and therefore the log);
    // the checkpoint makes the base document recoverable.
    bib::generate_into(&db, &cfg);
    db.checkpoint().expect("checkpoint clean database");

    xtc_failpoint::clear();
    xtc_failpoint::set_seed(seed);
    // One kill: after it fires the engine is crashed and every further
    // operation fails fast, so the workers drain quickly.
    xtc_failpoint::configure(site, 0.2, FailAction::Error, Some(1));

    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let db = db.clone();
            let cfg_topics = cfg.topics;
            std::thread::spawn(move || {
                let policy = RetryPolicy {
                    max_attempts: 4,
                    base: Duration::from_micros(200),
                    cap: Duration::from_millis(4),
                    ..RetryPolicy::default()
                };
                let mut fates = Vec::new();
                for i in 0..MARKERS {
                    let marker = format!("mw{w}i{i}");
                    let name = marker.clone();
                    let (res, _) = db.run_retrying(&policy, move |txn| {
                        let topic = txn
                            .element_by_id(&format!("t{}", w % cfg_topics))?
                            .expect("topic exists");
                        txn.insert_element(&topic, xtc_core::InsertPos::LastChild, &name)
                            .map(|_| ())
                    });
                    let fate = match res {
                        Ok(()) => Fate::Committed,
                        Err(XtcError::Wal(_)) => Fate::Unknown,
                        Err(_) => Fate::Absent,
                    };
                    fates.push((marker, fate));
                }
                fates
            })
        })
        .collect();
    let mut fates = Vec::new();
    for h in handles {
        fates.extend(h.join().expect("worker panicked"));
    }

    let injected = xtc_failpoint::hits(site) > 0;
    xtc_failpoint::clear();

    let wal = db.wal().expect("wal configured").clone();
    let crashed_live = wal.is_crashed();
    // Scenarios where the budgeted fault never fired (e.g. no page split
    // happened) still exercise the recovery path: kill the engine now.
    wal.crash();
    drop(db);

    let (rec, report) =
        recover_from(&wal, XtcConfig::default()).expect("recovery must succeed");
    let store = rec.store();
    for (marker, fate) in &fates {
        let count = store.elements_named(marker).len();
        match fate {
            Fate::Committed => assert_eq!(
                count, 1,
                "{proto}/{site}: committed marker {marker} lost or duplicated"
            ),
            Fate::Absent => assert_eq!(
                count, 0,
                "{proto}/{site}: rolled-back marker {marker} leaked into recovery"
            ),
            Fate::Unknown => assert!(
                count <= 1,
                "{proto}/{site}: in-doubt marker {marker} duplicated"
            ),
        }
    }
    assert_eq!(
        store.verify_indexes(),
        Vec::<String>::new(),
        "{proto}/{site}: recovered indexes inconsistent"
    );
    assert!(
        report.checkpoint_lsn.is_some(),
        "{proto}/{site}: base checkpoint missing from durable log"
    );
    (injected && crashed_live, report.torn_tail)
}

#[test]
fn crash_recovery_matrix_over_all_protocols_and_kill_sites() {
    let _storm = STORM_LOCK.lock().unwrap();
    let mut mid_run_crashes = 0u32;
    let mut torn_tails = 0u32;
    for proto in ALL_PROTOCOLS {
        for (s, site) in KILL_SITES.iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            let seed = 0xDEAD_0001 ^ (proto.len() as u64) << 8 ^ s as u64;
            let handle = std::thread::spawn(move || {
                let out = crash_scenario(proto, site, seed);
                let _ = tx.send(());
                out
            });
            // No hangs: a wedged scenario fails loudly instead of timing
            // the whole suite out.
            rx.recv_timeout(WATCHDOG).unwrap_or_else(|_| {
                panic!("{proto}/{site}: crash scenario hung past {WATCHDOG:?}")
            });
            let (crashed_mid_run, torn) = handle.join().expect("scenario panicked");
            mid_run_crashes += u32::from(crashed_mid_run);
            torn_tails += u32::from(torn);
        }
    }
    // Across 33 scenarios the kills must actually land mid-run (not only
    // via the end-of-scenario fallback crash), and the torn-tail path
    // (wal.flush writing a partial batch) must have been decoded at
    // least once — otherwise this matrix exercises nothing.
    assert!(
        mid_run_crashes > 0,
        "no scenario crashed mid-run; the kill sites never fired"
    );
    assert!(
        torn_tails > 0,
        "no scenario produced a torn log tail; wal.flush kills never landed"
    );
}
