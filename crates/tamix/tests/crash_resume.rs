//! Chaos-at-scale: crash–recover–resume matrix plus double-crash
//! convergence. Only compiled with the `failpoints` feature
//! (`cargo test -p xtc-tamix --features failpoints`).
//!
//! Each scenario uses the [`xtc_tamix::chaos`] harness: a CLUSTER1
//! storm plus fate-ledgered marker writers run against a WAL-backed
//! database, the engine is killed at an armed failpoint, recovered,
//! verified (no acknowledged commit lost, no clean failure leaked,
//! document invariants and indexes intact), and the remaining workload
//! resumes on the recovered engine.

#![cfg(feature = "failpoints")]

use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;
use xtc_core::wal::WalConfig;
use xtc_core::{recover_from, AdmissionPolicy, IsolationLevel, XtcConfig, XtcDb, XtcError};
use xtc_failpoint::FailAction;
use xtc_protocols::EXTENDED_PROTOCOLS;
use xtc_tamix::chaos::{document_digest, run_crash_recover_resume, ChaosParams};
use xtc_tamix::{bib, BibConfig};

/// Per-scenario watchdog (the matrix shares the machine with the rest
/// of the suite).
const WATCHDOG: Duration = Duration::from_secs(120);

/// The failpoint registry is process-global; tests arming it must not
/// overlap (`cargo test` runs `#[test]` functions on multiple threads).
static STORM_LOCK: Mutex<()> = Mutex::new(());

/// One crash point per layer: the commit record (clean batch loss), the
/// group-commit fsync (injected device failure), and a page-read I/O
/// fault (storage-side poisoning).
const KILL_SITES: [&str; 3] = ["wal.commit", "wal.fsync", "store.page_read_io"];

#[test]
fn chaos_matrix_over_all_protocols_and_fault_sites() {
    let _storm = STORM_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut mid_run_crashes = 0u32;
    // The extended field: the versioned contestants recover through the
    // same WAL path (their version chains rebuild from committed
    // winners), so they face the same kill sites.
    for proto in EXTENDED_PROTOCOLS {
        for (s, site) in KILL_SITES.iter().enumerate() {
            let seed = 0xC4A0_5EED ^ ((proto.len() as u64) << 8) ^ s as u64;
            let (tx, rx) = mpsc::channel();
            let handle = std::thread::spawn(move || {
                let report = run_crash_recover_resume(&ChaosParams::quick(proto, site, seed));
                let _ = tx.send(());
                report
            });
            // No hangs: a wedged scenario fails loudly instead of timing
            // the whole suite out.
            rx.recv_timeout(WATCHDOG).unwrap_or_else(|_| {
                panic!("{proto}/{site}: chaos scenario hung past {WATCHDOG:?}")
            });
            let report = handle.join().expect("scenario panicked");
            assert!(
                report.passed(),
                "{proto}/{site}: contract violated: {:?}",
                report.violations
            );
            assert!(
                report.post.committed() > 0,
                "{proto}/{site}: no progress after recovery"
            );
            mid_run_crashes += u32::from(report.crashed_mid_run);
        }
    }
    // Across 39 scenarios the kills must actually land mid-run (not only
    // via the end-of-phase fallback crash), or this matrix exercises
    // nothing beyond plain recovery.
    assert!(
        mid_run_crashes > 0,
        "no scenario crashed mid-run; the kill sites never fired"
    );
}

#[test]
fn chaos_with_deadlines_and_admission_control() {
    let _storm = STORM_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut params = ChaosParams::quick("OO2PL", "wal.commit", 0xAD31_5510);
    params.tamix.txn_deadline = Some(Duration::from_millis(250));
    params.tamix.max_in_flight = Some(2);
    params.tamix.admission = AdmissionPolicy::Queue;
    let report = run_crash_recover_resume(&params);
    assert!(
        report.passed(),
        "deadline+admission chaos violated the contract: {:?}",
        report.violations
    );
    assert_eq!(report.pre.txn_deadline_us, Some(250_000));
    assert!(report.post.committed() > 0);
}

#[test]
fn file_backed_pool_chaos_with_background_writeback() {
    let _storm = STORM_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // Same contract as the main matrix, but on a disk-backed pool with a
    // tight residency budget and a background flusher, with the armed
    // kill site on the write-back path — so the faults land inside the
    // flusher thread and the eviction-time forced writeback.
    for (i, proto) in ["taDOM3+", "OO2PL"].into_iter().enumerate() {
        let dir = std::env::temp_dir().join(format!(
            "xtc-chaos-filebacked-{}-{i}",
            std::process::id()
        ));
        let mut params =
            ChaosParams::quick(proto, "pool.evict_write", 0xF11E_0C4A ^ (i as u64) << 4);
        params.tamix.store.backend_dir = Some(dir.clone());
        params.tamix.store.max_resident_pages = Some(8);
        params.tamix.writeback_interval = Some(Duration::from_millis(2));
        let report = run_crash_recover_resume(&params);
        assert!(
            report.passed(),
            "{proto}/pool.evict_write file-backed: contract violated: {:?}",
            report.violations
        );
        assert!(
            report.post.committed() > 0,
            "{proto}: no progress after file-backed recovery"
        );
        // The scenario must actually have driven the write-back path it
        // targets: pages were flushed (background or forced) pre-crash.
        assert!(
            report.pre.pool.flushes + report.pre.pool.forced_writebacks > 0,
            "{proto}: file-backed storm never wrote a page back: {:?}",
            report.pre.pool
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn file_backed_recovery_matches_in_memory_recovery() {
    let _storm = STORM_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // Kill writebacks while a file-backed engine with a background
    // flusher runs the marker workload, crash it, then recover the same
    // durable prefix twice — once onto a file-backed pool (tight budget,
    // so replay itself evicts and faults pages back in through the CRC
    // check) and once onto the in-memory pool. The documents must match
    // byte for byte: the storage tier must never change what recovery
    // reconstructs.
    let dir_run = std::env::temp_dir().join(format!("xtc-fbrun-{}", std::process::id()));
    let dir_rec = std::env::temp_dir().join(format!("xtc-fbrec-{}", std::process::id()));

    let cfg = BibConfig::tiny();
    let mut run_cfg = XtcConfig {
        protocol: "taDOM2".to_string(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 4,
        wal: Some(WalConfig::default()),
        writeback_interval: Some(Duration::from_millis(1)),
        ..XtcConfig::default()
    };
    run_cfg.store.backend_dir = Some(dir_run.clone());
    run_cfg.store.max_resident_pages = Some(8);
    xtc_failpoint::clear();
    xtc_failpoint::set_seed(11);
    // A transient burst: the first three write-back attempts fail (the
    // flusher and forced writebacks retry through them), then the device
    // heals.
    xtc_failpoint::configure("pool.evict_write", 1.0, FailAction::Error, Some(3));
    let wal = {
        let db = Arc::new(XtcDb::new(run_cfg));
        bib::generate_into(&db, &cfg);
        db.checkpoint().expect("checkpoint");
        for i in 0..6 {
            let txn = db.begin();
            let topic = txn
                .element_by_id(&format!("t{}", i % cfg.topics))
                .expect("read topic")
                .expect("topic exists");
            txn.insert_element(&topic, xtc_core::InsertPos::LastChild, &format!("fb{i}"))
                .expect("insert marker");
            txn.commit().expect("commit marker");
            // Leave the flusher a window so some kills land inside it.
            std::thread::sleep(Duration::from_millis(2));
        }
        let wal = db.wal().expect("wal configured").clone();
        wal.crash();
        wal
    };
    xtc_failpoint::clear();

    let mut fb_cfg = XtcConfig::default();
    fb_cfg.store.backend_dir = Some(dir_rec.clone());
    fb_cfg.store.max_resident_pages = Some(8);
    fb_cfg.writeback_interval = Some(Duration::from_millis(1));
    let (db_fb, rep_fb) = recover_from(&wal, fb_cfg).expect("file-backed recovery failed");
    let (db_mem, rep_mem) = recover_from(&wal, XtcConfig::default()).expect("recovery failed");
    assert_eq!(rep_fb.scanned, rep_mem.scanned);
    assert_eq!(rep_fb.winners, rep_mem.winners);
    assert_eq!(
        document_digest(&db_fb),
        document_digest(&db_mem),
        "file-backed recovery diverged from in-memory recovery"
    );
    assert_eq!(db_fb.store().elements_named("fb0").len(), 1);
    assert!(db_fb.store().verify_indexes().is_empty());
    assert!(
        !db_fb.store().stats().is_poisoned(),
        "file-backed replay poisoned the store"
    );
    let _ = std::fs::remove_dir_all(&dir_run);
    let _ = std::fs::remove_dir_all(&dir_rec);
}

/// Builds a WAL-backed database, runs a short marker workload, crashes
/// it, and hands back the log for recovery experiments.
fn crashed_log() -> Arc<xtc_core::wal::Wal> {
    let cfg = BibConfig::tiny();
    let db = Arc::new(XtcDb::new(XtcConfig {
        protocol: "taDOM2".to_string(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 4,
        wal: Some(WalConfig::default()),
        ..XtcConfig::default()
    }));
    bib::generate_into(&db, &cfg);
    db.checkpoint().expect("checkpoint");
    for i in 0..6 {
        let txn = db.begin();
        let topic = txn
            .element_by_id(&format!("t{}", i % cfg.topics))
            .expect("read topic")
            .expect("topic exists");
        txn.insert_element(&topic, xtc_core::InsertPos::LastChild, &format!("dc{i}"))
            .expect("insert marker");
        txn.commit().expect("commit marker");
    }
    let wal = db.wal().expect("wal configured").clone();
    wal.crash();
    wal
}

#[test]
fn double_crash_recovery_converges_to_the_same_document() {
    let _storm = STORM_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let wal = crashed_log();

    for site in ["recovery.analysis", "recovery.redo"] {
        // First recovery attempt dies at the armed site.
        xtc_failpoint::clear();
        xtc_failpoint::set_seed(7);
        xtc_failpoint::configure(site, 1.0, FailAction::Error, Some(1));
        let err = recover_from(&wal, XtcConfig::default())
            .err()
            .unwrap_or_else(|| panic!("{site}: armed recovery unexpectedly succeeded"));
        assert!(
            matches!(err, XtcError::Injected),
            "{site}: expected injected failure, got {err}"
        );
        xtc_failpoint::clear();

        // Recovery never writes to the source log, so the second attempt
        // sees the same durable prefix and must succeed…
        let (db1, report1) = recover_from(&wal, XtcConfig::default())
            .unwrap_or_else(|e| panic!("{site}: second recovery failed: {e}"));
        // …and a third, from the very same log, must converge to the
        // same document byte for byte.
        let (db2, report2) =
            recover_from(&wal, XtcConfig::default()).expect("third recovery failed");
        assert_eq!(report1.scanned, report2.scanned);
        assert_eq!(report1.winners, report2.winners);
        assert_eq!(
            document_digest(&db1),
            document_digest(&db2),
            "{site}: repeated recovery diverged"
        );
        assert_eq!(db1.store().elements_named("dc0").len(), 1);
        assert!(db1.store().verify_indexes().is_empty());
    }
}
