//! Chaos-at-scale: crash–recover–resume matrix plus double-crash
//! convergence. Only compiled with the `failpoints` feature
//! (`cargo test -p xtc-tamix --features failpoints`).
//!
//! Each scenario uses the [`xtc_tamix::chaos`] harness: a CLUSTER1
//! storm plus fate-ledgered marker writers run against a WAL-backed
//! database, the engine is killed at an armed failpoint, recovered,
//! verified (no acknowledged commit lost, no clean failure leaked,
//! document invariants and indexes intact), and the remaining workload
//! resumes on the recovered engine.

#![cfg(feature = "failpoints")]

use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;
use xtc_core::wal::WalConfig;
use xtc_core::{recover_from, AdmissionPolicy, IsolationLevel, XtcConfig, XtcDb, XtcError};
use xtc_failpoint::FailAction;
use xtc_protocols::ALL_PROTOCOLS;
use xtc_tamix::chaos::{document_digest, run_crash_recover_resume, ChaosParams};
use xtc_tamix::{bib, BibConfig};

/// Per-scenario watchdog (the matrix shares the machine with the rest
/// of the suite).
const WATCHDOG: Duration = Duration::from_secs(120);

/// The failpoint registry is process-global; tests arming it must not
/// overlap (`cargo test` runs `#[test]` functions on multiple threads).
static STORM_LOCK: Mutex<()> = Mutex::new(());

/// One crash point per layer: the commit record (clean batch loss), the
/// group-commit fsync (injected device failure), and a page-read I/O
/// fault (storage-side poisoning).
const KILL_SITES: [&str; 3] = ["wal.commit", "wal.fsync", "store.page_read_io"];

#[test]
fn chaos_matrix_over_all_protocols_and_fault_sites() {
    let _storm = STORM_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut mid_run_crashes = 0u32;
    for proto in ALL_PROTOCOLS {
        for (s, site) in KILL_SITES.iter().enumerate() {
            let seed = 0xC4A0_5EED ^ ((proto.len() as u64) << 8) ^ s as u64;
            let (tx, rx) = mpsc::channel();
            let handle = std::thread::spawn(move || {
                let report = run_crash_recover_resume(&ChaosParams::quick(proto, site, seed));
                let _ = tx.send(());
                report
            });
            // No hangs: a wedged scenario fails loudly instead of timing
            // the whole suite out.
            rx.recv_timeout(WATCHDOG).unwrap_or_else(|_| {
                panic!("{proto}/{site}: chaos scenario hung past {WATCHDOG:?}")
            });
            let report = handle.join().expect("scenario panicked");
            assert!(
                report.passed(),
                "{proto}/{site}: contract violated: {:?}",
                report.violations
            );
            assert!(
                report.post.committed() > 0,
                "{proto}/{site}: no progress after recovery"
            );
            mid_run_crashes += u32::from(report.crashed_mid_run);
        }
    }
    // Across 33 scenarios the kills must actually land mid-run (not only
    // via the end-of-phase fallback crash), or this matrix exercises
    // nothing beyond plain recovery.
    assert!(
        mid_run_crashes > 0,
        "no scenario crashed mid-run; the kill sites never fired"
    );
}

#[test]
fn chaos_with_deadlines_and_admission_control() {
    let _storm = STORM_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut params = ChaosParams::quick("OO2PL", "wal.commit", 0xAD31_5510);
    params.tamix.txn_deadline = Some(Duration::from_millis(250));
    params.tamix.max_in_flight = Some(2);
    params.tamix.admission = AdmissionPolicy::Queue;
    let report = run_crash_recover_resume(&params);
    assert!(
        report.passed(),
        "deadline+admission chaos violated the contract: {:?}",
        report.violations
    );
    assert_eq!(report.pre.txn_deadline_us, Some(250_000));
    assert!(report.post.committed() > 0);
}

/// Builds a WAL-backed database, runs a short marker workload, crashes
/// it, and hands back the log for recovery experiments.
fn crashed_log() -> Arc<xtc_core::wal::Wal> {
    let cfg = BibConfig::tiny();
    let db = Arc::new(XtcDb::new(XtcConfig {
        protocol: "taDOM2".to_string(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 4,
        wal: Some(WalConfig::default()),
        ..XtcConfig::default()
    }));
    bib::generate_into(&db, &cfg);
    db.checkpoint().expect("checkpoint");
    for i in 0..6 {
        let txn = db.begin();
        let topic = txn
            .element_by_id(&format!("t{}", i % cfg.topics))
            .expect("read topic")
            .expect("topic exists");
        txn.insert_element(&topic, xtc_core::InsertPos::LastChild, &format!("dc{i}"))
            .expect("insert marker");
        txn.commit().expect("commit marker");
    }
    let wal = db.wal().expect("wal configured").clone();
    wal.crash();
    wal
}

#[test]
fn double_crash_recovery_converges_to_the_same_document() {
    let _storm = STORM_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let wal = crashed_log();

    for site in ["recovery.analysis", "recovery.redo"] {
        // First recovery attempt dies at the armed site.
        xtc_failpoint::clear();
        xtc_failpoint::set_seed(7);
        xtc_failpoint::configure(site, 1.0, FailAction::Error, Some(1));
        let err = recover_from(&wal, XtcConfig::default())
            .err()
            .unwrap_or_else(|| panic!("{site}: armed recovery unexpectedly succeeded"));
        assert!(
            matches!(err, XtcError::Injected),
            "{site}: expected injected failure, got {err}"
        );
        xtc_failpoint::clear();

        // Recovery never writes to the source log, so the second attempt
        // sees the same durable prefix and must succeed…
        let (db1, report1) = recover_from(&wal, XtcConfig::default())
            .unwrap_or_else(|e| panic!("{site}: second recovery failed: {e}"));
        // …and a third, from the very same log, must converge to the
        // same document byte for byte.
        let (db2, report2) =
            recover_from(&wal, XtcConfig::default()).expect("third recovery failed");
        assert_eq!(report1.scanned, report2.scanned);
        assert_eq!(report1.winners, report2.winners);
        assert_eq!(
            document_digest(&db1),
            document_digest(&db2),
            "{site}: repeated recovery diverged"
        );
        assert_eq!(db1.store().elements_named("dc0").len(), 1);
        assert!(db1.store().verify_indexes().is_empty());
    }
}
