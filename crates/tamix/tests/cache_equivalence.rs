//! Cache-on vs. cache-off equivalence: the per-transaction lock cache is
//! a pure fast path — for a deterministic (sequential, seeded) TaMix
//! workload it must produce identical commit/abort outcomes, identical
//! final documents, and identical `lock_requests` accounting for every
//! protocol. A failpoints-gated variant re-checks this under injected
//! lock-acquire faults (the failpoint site fires on its eval sequence,
//! which the cache must not perturb).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Mutex;
use std::time::Duration;
use xtc_core::{IsolationLevel, XtcConfig, XtcDb};
use xtc_tamix::txns::{run_txn, Pacing};
use xtc_tamix::{bib, BibConfig, TxnKind};

/// Tests in this file must not interleave when the failpoints feature is
/// on: the failpoint registry is process-global.
static GUARD: Mutex<()> = Mutex::new(());

/// The deterministic workload: a fixed cycle of transaction kinds, each
/// run sequentially with its own per-index seed.
const MIX: [TxnKind; 5] = [
    TxnKind::QueryBook,
    TxnKind::Chapter,
    TxnKind::LendAndReturn,
    TxnKind::RenameTopic,
    TxnKind::DelBook,
];
const TXNS: usize = 40;

/// One comparable outcome: commit (with/without work) or the abort's
/// display string (error enums don't implement Eq across the board).
fn outcome_of(result: Result<bool, xtc_core::XtcError>) -> String {
    match result {
        Ok(true) => "commit".to_string(),
        Ok(false) => "empty".to_string(),
        Err(e) => format!("abort: {e}"),
    }
}

/// FNV-1a digest over the document in document order: labels, node kind,
/// names, and text content.
fn document_digest(db: &XtcDb) -> u64 {
    let mut nodes = db.store().all_nodes();
    nodes.sort_by(|(a, _), (b, _)| a.cmp(b));
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (id, _) in &nodes {
        eat(id.to_string().as_bytes());
        if let Some(name) = db.store().name_of(id) {
            eat(b"n:");
            eat(name.as_bytes());
        }
        if let Some(text) = db.store().text_of(id) {
            eat(b"t:");
            eat(text.as_bytes());
        }
    }
    h
}

struct RunResult {
    outcomes: Vec<String>,
    digest: u64,
    lock_requests: u64,
    table_requests: u64,
    cache_hits: u64,
}

/// Runs the sequential seeded workload once and returns everything the
/// equivalence assertions compare. `after_setup` runs between document
/// generation and the workload — the hook the chaos variant uses to arm
/// failpoints at the workload only, not at setup.
fn run_workload_with(
    protocol: &str,
    cache: bool,
    seed: u64,
    after_setup: impl FnOnce(),
) -> RunResult {
    let db = XtcDb::new(XtcConfig {
        protocol: protocol.to_string(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 4,
        lock_timeout: Duration::from_secs(5),
        lock_cache: cache,
        ..XtcConfig::default()
    });
    bib::generate_into(&db, &BibConfig::tiny());
    after_setup();
    let pacing = Pacing {
        wait_after_operation: Duration::ZERO,
        ..Pacing::default()
    };
    let mut outcomes = Vec::with_capacity(TXNS);
    for i in 0..TXNS {
        let kind = MIX[i % MIX.len()];
        // Fresh RNG per transaction: both arms draw identical targets
        // regardless of how many random values earlier transactions used.
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(i as u64 * 7919));
        outcomes.push(outcome_of(run_txn(&db, kind, &BibConfig::tiny(), &mut rng, pacing)));
    }
    RunResult {
        outcomes,
        digest: document_digest(&db),
        lock_requests: db.lock_table().requests(),
        table_requests: db.lock_table().table_requests(),
        cache_hits: db.lock_table().cache_hits(),
    }
}

fn run_workload(protocol: &str, cache: bool, seed: u64) -> RunResult {
    run_workload_with(protocol, cache, seed, || {})
}

fn assert_equivalent(protocol: &str, on: &RunResult, off: &RunResult) {
    assert_eq!(
        on.outcomes, off.outcomes,
        "{protocol}: commit/abort outcomes diverge between cache on and off"
    );
    assert_eq!(
        on.digest, off.digest,
        "{protocol}: final documents diverge between cache on and off"
    );
    assert_eq!(
        on.lock_requests, off.lock_requests,
        "{protocol}: lock_requests accounting must not depend on the cache"
    );
    assert_eq!(
        off.cache_hits, 0,
        "{protocol}: disabled cache must never report hits"
    );
}

/// Request-accounting identities. These hold only fault-free: an
/// injected error returns from `lock_with` after `lock_requests` but
/// before the hit/table split, so the chaos variant skips them.
fn assert_accounting(protocol: &str, on: &RunResult, off: &RunResult) {
    assert_eq!(
        off.table_requests, off.lock_requests,
        "{protocol}: with the cache off every request reaches the table"
    );
    assert_eq!(
        on.cache_hits + on.table_requests,
        on.lock_requests,
        "{protocol}: every request is either a hit or table traffic"
    );
}

#[test]
fn cache_equivalence_all_protocols() {
    let _g = GUARD.lock().unwrap();
    let mut total_hits = 0u64;
    // The extended field includes the versioned contestants: their
    // snapshot reads bypass the lock table entirely, but their write
    // side maps through taDOM3+ and must stay cache-coherent too.
    for proto in xtc_protocols::EXTENDED_PROTOCOLS {
        let on = run_workload(proto, true, 0xC0FF_EE00);
        let off = run_workload(proto, false, 0xC0FF_EE00);
        assert_equivalent(proto, &on, &off);
        assert_accounting(proto, &on, &off);
        total_hits += on.cache_hits;
    }
    assert!(
        total_hits > 0,
        "the workload must actually exercise the cache somewhere"
    );
}

/// The taDOM protocols re-lock ancestor paths on every operation — the
/// cache must visibly absorb traffic there, not just stay coherent.
#[test]
fn cache_absorbs_tadom_path_relocking() {
    let _g = GUARD.lock().unwrap();
    for proto in ["taDOM2", "taDOM2+", "taDOM3", "taDOM3+"] {
        let on = run_workload(proto, true, 7);
        assert!(
            on.cache_hits > 0,
            "{proto}: sequential mix produced no cache hits"
        );
        assert!(
            on.table_requests < on.lock_requests,
            "{proto}: cache hits must reduce shared-table traffic"
        );
    }
}

/// Chaos variant: injected lock-acquire faults must hit the same
/// requests in both arms (the failpoint evaluates once per request,
/// cache hit or not), keeping outcomes and documents identical.
#[cfg(feature = "failpoints")]
#[test]
fn cache_equivalence_under_lock_faults() {
    use xtc_failpoint::FailAction;

    let _g = GUARD.lock().unwrap();
    for proto in xtc_protocols::ALL_PROTOCOLS {
        let arm = |cache: bool| {
            // Armed *after* document generation (inside the hook) so the
            // fault budget is spent on the workload, not on setup — and
            // so both arms start the storm at the same eval count.
            let result = run_workload_with(proto, cache, 0xFA11_0000, || {
                xtc_failpoint::clear();
                xtc_failpoint::set_seed(0xFA11);
                xtc_failpoint::configure("lock.acquire", 0.02, FailAction::Error, Some(24));
            });
            let injected = xtc_failpoint::hits("lock.acquire");
            xtc_failpoint::clear();
            (result, injected)
        };
        let (on, on_injected) = arm(true);
        let (off, off_injected) = arm(false);
        assert_equivalent(proto, &on, &off);
        assert!(
            on_injected > 0,
            "{proto}: fault injection never fired — the test is not \
             exercising the fault path"
        );
        assert_eq!(
            on_injected, off_injected,
            "{proto}: the cache must not change which requests get faulted"
        );
        assert!(
            on.outcomes.iter().any(|o| o.starts_with("abort")),
            "{proto}: an injected lock error should abort at least one transaction"
        );
    }
}
