//! Golden-trace determinism: the same seeded sequential workload run
//! twice must record the same event sequence. Events are compared after
//! [`xtc_obs::EventKind::normalized`] zeroes the *measured* fields
//! (`waited_us`, per-transaction lock-wait/WAL-flush micros) — those
//! depend on the host's wall clock; everything else (event kinds, order,
//! transaction attribution, page ids, lock names and modes, LSNs, the
//! deterministic virtual-time charges) must match exactly.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;
use xtc_core::{IsolationLevel, XtcConfig, XtcDb};
use xtc_obs::{Event, EventKind, ObsConfig};
use xtc_tamix::txns::{run_txn, Pacing};
use xtc_tamix::{bib, BibConfig, TxnKind};

const MIX: [TxnKind; 5] = [
    TxnKind::QueryBook,
    TxnKind::Chapter,
    TxnKind::LendAndReturn,
    TxnKind::RenameTopic,
    TxnKind::DelBook,
];
const TXNS: usize = 15;
const SEED: u64 = 0x601D_7ACE;

fn traced_run(protocol: &str) -> (Vec<Event>, xtc_obs::VirtualTimes) {
    let db = XtcDb::new(XtcConfig {
        protocol: protocol.to_string(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 4,
        obs: Some(ObsConfig {
            trace_events: 1 << 20,
        }),
        wal: Some(xtc_core::wal::WalConfig::default()),
        store: xtc_node::DocStoreConfig {
            read_latency: Duration::from_micros(10),
            ..xtc_node::DocStoreConfig::default()
        },
        ..XtcConfig::default()
    });
    bib::generate_into(&db, &BibConfig::tiny());
    let pacing = Pacing {
        wait_after_operation: Duration::ZERO,
        ..Pacing::default()
    };
    for i in 0..TXNS {
        let kind = MIX[i % MIX.len()];
        let mut rng = SmallRng::seed_from_u64(SEED.wrapping_add(i as u64 * 7919));
        let _ = run_txn(&db, kind, &BibConfig::tiny(), &mut rng, pacing);
    }
    let events = db.obs().events();
    assert_eq!(
        events.len() as u64,
        db.obs().recorded_events(),
        "the ring must not have wrapped (capacity too small for the workload)"
    );
    (events, db.obs().vt())
}

fn normalized(events: &[Event]) -> Vec<(u64, u64, EventKind)> {
    events
        .iter()
        .map(|e| (e.seq, e.txn, e.kind.normalized()))
        .collect()
}

#[test]
fn same_seed_same_trace() {
    // taMVCC covers the versioned read path: snapshot-read events and
    // version-store interactions must replay bit-identically too.
    for proto in ["taDOM3+", "Node2PL", "taMVCC"] {
        let (a, vt_a) = traced_run(proto);
        let (b, vt_b) = traced_run(proto);
        assert!(!a.is_empty(), "{proto}: the run must record events");
        let (na, nb) = (normalized(&a), normalized(&b));
        assert_eq!(
            na.len(),
            nb.len(),
            "{proto}: event counts diverge between identical seeded runs"
        );
        for (x, y) in na.iter().zip(nb.iter()) {
            assert_eq!(x, y, "{proto}: traces diverge at seq {}", x.0);
        }
        // The deterministic virtual-time components are bit-identical
        // too; the measured ones are ~0 in a sequential run but not
        // asserted.
        assert_eq!(vt_a.page_read_us, vt_b.page_read_us, "{proto}");
        assert_eq!(vt_a.think_us, vt_b.think_us, "{proto}");
        assert!(vt_a.page_read_us > 0, "{proto}: page reads must charge");
    }
}

/// The exported JSON of a seeded run carries timelines for every
/// transaction the workload began, and the page-read histogram records
/// one sample per logical page read.
#[test]
fn export_carries_timelines_and_histograms() {
    let (events, _) = traced_run("taDOM3+");
    let begins = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TxnBegin))
        .count();
    let ends = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TxnEnd { .. }))
        .count();
    assert_eq!(begins, TXNS);
    assert_eq!(ends, TXNS);

    let db = XtcDb::new(XtcConfig {
        protocol: "taDOM3+".to_string(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 4,
        obs: Some(ObsConfig::default()),
        store: xtc_node::DocStoreConfig {
            read_latency: Duration::from_micros(10),
            ..xtc_node::DocStoreConfig::default()
        },
        ..XtcConfig::default()
    });
    bib::generate_into(&db, &BibConfig::tiny());
    let mut rng = SmallRng::seed_from_u64(SEED);
    let pacing = Pacing {
        wait_after_operation: Duration::ZERO,
        ..Pacing::default()
    };
    run_txn(&db, TxnKind::QueryBook, &BibConfig::tiny(), &mut rng, pacing).unwrap();
    let reads = db.store().stats().page_reads();
    let hist = db
        .obs()
        .histogram(xtc_obs::HistKind::PageRead)
        .expect("tracing is on");
    assert_eq!(hist.count(), reads, "one histogram sample per page read");
    let json = db.obs().export_json("golden");
    assert!(json.contains("\"label\": \"golden\""));
    assert!(json.contains("\"outcome\":\"commit\""));
    assert!(json.contains("\"page_read_us\""));
}
