//! Tracing-on vs. tracing-off equivalence: the observability layer is a
//! pure observer — for a deterministic (sequential, seeded) TaMix
//! workload, enabling the trace must produce identical commit/abort
//! outcomes, identical final documents, and identical `lock_requests`
//! accounting for every protocol. This is the guard against the layer
//! ever growing a side effect on execution.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;
use xtc_core::{IsolationLevel, XtcConfig, XtcDb};
use xtc_obs::ObsConfig;
use xtc_tamix::txns::{run_txn, Pacing};
use xtc_tamix::{bib, BibConfig, TxnKind};

const MIX: [TxnKind; 5] = [
    TxnKind::QueryBook,
    TxnKind::Chapter,
    TxnKind::LendAndReturn,
    TxnKind::RenameTopic,
    TxnKind::DelBook,
];
const TXNS: usize = 40;

fn outcome_of(result: Result<bool, xtc_core::XtcError>) -> String {
    match result {
        Ok(true) => "commit".to_string(),
        Ok(false) => "empty".to_string(),
        Err(e) => format!("abort: {e}"),
    }
}

/// FNV-1a digest over the document in document order (same digest the
/// cache-equivalence test uses).
fn document_digest(db: &XtcDb) -> u64 {
    let mut nodes = db.store().all_nodes();
    nodes.sort_by(|(a, _), (b, _)| a.cmp(b));
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (id, _) in &nodes {
        eat(id.to_string().as_bytes());
        if let Some(name) = db.store().name_of(id) {
            eat(b"n:");
            eat(name.as_bytes());
        }
        if let Some(text) = db.store().text_of(id) {
            eat(b"t:");
            eat(text.as_bytes());
        }
    }
    h
}

struct RunResult {
    outcomes: Vec<String>,
    digest: u64,
    lock_requests: u64,
    page_reads: u64,
    events: u64,
}

fn run_workload(protocol: &str, trace: bool, seed: u64) -> RunResult {
    let db = XtcDb::new(XtcConfig {
        protocol: protocol.to_string(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 4,
        lock_timeout: Duration::from_secs(5),
        obs: trace.then(ObsConfig::default),
        ..XtcConfig::default()
    });
    bib::generate_into(&db, &BibConfig::tiny());
    let pacing = Pacing {
        wait_after_operation: Duration::ZERO,
        ..Pacing::default()
    };
    let mut outcomes = Vec::with_capacity(TXNS);
    for i in 0..TXNS {
        let kind = MIX[i % MIX.len()];
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(i as u64 * 7919));
        outcomes.push(outcome_of(run_txn(&db, kind, &BibConfig::tiny(), &mut rng, pacing)));
    }
    RunResult {
        outcomes,
        digest: document_digest(&db),
        lock_requests: db.lock_table().requests(),
        page_reads: db.store().stats().page_reads(),
        events: db.obs().recorded_events(),
    }
}

#[test]
fn obs_equivalence_all_protocols() {
    for proto in xtc_protocols::ALL_PROTOCOLS {
        let on = run_workload(proto, true, 0x0B5E_0000);
        let off = run_workload(proto, false, 0x0B5E_0000);
        assert_eq!(
            on.outcomes, off.outcomes,
            "{proto}: commit/abort outcomes diverge between obs on and off"
        );
        assert_eq!(
            on.digest, off.digest,
            "{proto}: final documents diverge between obs on and off"
        );
        assert_eq!(
            on.lock_requests, off.lock_requests,
            "{proto}: lock_requests accounting must not depend on tracing"
        );
        assert_eq!(
            on.page_reads, off.page_reads,
            "{proto}: page access pattern must not depend on tracing"
        );
        assert!(
            on.events > 0,
            "{proto}: the traced arm must actually record events"
        );
        assert_eq!(
            off.events, 0,
            "{proto}: tracing off must record nothing"
        );
    }
}
