//! Filter-on vs. filter-off equivalence (ISSUE 9, satellite 4): the
//! cuckoo filters fronting the element and ID indexes are a pure
//! negative-lookup fast path. For a deterministic (sequential, seeded)
//! TaMix workload they must produce identical commit/abort outcomes,
//! identical final documents, and identical lock traces
//! (`lock_requests`/`table_requests` — the filter sits *below* the lock
//! protocol, so no lock may appear or vanish with it) for every
//! protocol. What may legitimately change is page reads: that is the
//! point of the filter.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Mutex;
use std::time::Duration;
use xtc_core::{IsolationLevel, XtcConfig, XtcDb};
use xtc_tamix::txns::{run_txn, Pacing};
use xtc_tamix::{bib, BibConfig, TxnKind};

/// Serializes tests (shared failpoint/vocabulary-free, but keeps the
/// file's runs from fighting over cores in CI).
static GUARD: Mutex<()> = Mutex::new(());

const MIX: [TxnKind; 5] = [
    TxnKind::QueryBook,
    TxnKind::Chapter,
    TxnKind::LendAndReturn,
    TxnKind::RenameTopic,
    TxnKind::DelBook,
];
const TXNS: usize = 40;

fn outcome_of(result: Result<bool, xtc_core::XtcError>) -> String {
    match result {
        Ok(true) => "commit".to_string(),
        Ok(false) => "empty".to_string(),
        Err(e) => format!("abort: {e}"),
    }
}

/// FNV-1a digest over the document in document order.
fn document_digest(db: &XtcDb) -> u64 {
    let mut nodes = db.store().all_nodes();
    nodes.sort_by(|(a, _), (b, _)| a.cmp(b));
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (id, _) in &nodes {
        eat(id.to_string().as_bytes());
        if let Some(name) = db.store().name_of(id) {
            eat(b"n:");
            eat(name.as_bytes());
        }
        if let Some(text) = db.store().text_of(id) {
            eat(b"t:");
            eat(text.as_bytes());
        }
    }
    h
}

struct RunResult {
    outcomes: Vec<String>,
    digest: u64,
    lock_requests: u64,
    table_requests: u64,
    filter_probes: u64,
    filter_negatives: u64,
}

fn run_workload(protocol: &str, filters: bool, seed: u64) -> RunResult {
    let mut config = XtcConfig {
        protocol: protocol.to_string(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 4,
        lock_timeout: Duration::from_secs(5),
        ..XtcConfig::default()
    };
    config.store.index_filters = filters;
    let db = XtcDb::new(config);
    bib::generate_into(&db, &BibConfig::tiny());
    let pacing = Pacing {
        wait_after_operation: Duration::ZERO,
        ..Pacing::default()
    };
    let mut outcomes = Vec::with_capacity(TXNS);
    for i in 0..TXNS {
        let kind = MIX[i % MIX.len()];
        // Fresh RNG per transaction so both arms draw identical targets.
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(i as u64 * 7919));
        outcomes.push(outcome_of(run_txn(&db, kind, &BibConfig::tiny(), &mut rng, pacing)));
    }
    let pool = db.store().pool_stats();
    RunResult {
        outcomes,
        digest: document_digest(&db),
        lock_requests: db.lock_table().requests(),
        table_requests: db.lock_table().table_requests(),
        filter_probes: pool.filter_probes,
        filter_negatives: pool.filter_negatives,
    }
}

#[test]
fn filter_equivalence_all_protocols() {
    let _g = GUARD.lock().unwrap();
    let mut total_probes = 0u64;
    for proto in xtc_protocols::ALL_PROTOCOLS {
        let on = run_workload(proto, true, 0xF117_E500);
        let off = run_workload(proto, false, 0xF117_E500);
        assert_eq!(
            on.outcomes, off.outcomes,
            "{proto}: commit/abort outcomes diverge between filters on and off"
        );
        assert_eq!(
            on.digest, off.digest,
            "{proto}: final documents diverge between filters on and off"
        );
        assert_eq!(
            on.lock_requests, off.lock_requests,
            "{proto}: the filter must not change the lock trace"
        );
        assert_eq!(
            on.table_requests, off.table_requests,
            "{proto}: the filter must not change shared-table traffic"
        );
        assert_eq!(
            off.filter_probes, 0,
            "{proto}: disabled filters must never report probes"
        );
        assert!(
            on.filter_negatives <= on.filter_probes,
            "{proto}: more negatives than probes: {on:?} probes",
            on = on.filter_probes
        );
        total_probes += on.filter_probes;
    }
    assert!(
        total_probes > 0,
        "the workload must actually consult the filters somewhere"
    );
}

#[test]
fn filters_short_circuit_absent_probes_in_a_live_engine() {
    let _g = GUARD.lock().unwrap();
    let db = XtcDb::new(XtcConfig::default());
    bib::generate_into(&db, &BibConfig::tiny());

    // Intern "wisp" by inserting and renaming an element away from it:
    // the name stays in the vocabulary (so probes reach the filter) but
    // no element carries it, and its ID value "wisp-id" was never used.
    let t = db.begin();
    let topic = t.element_by_id("t0").unwrap().unwrap();
    let e = t
        .insert_element(&topic, xtc_core::InsertPos::LastChild, "wisp")
        .unwrap();
    t.rename(&e, "wosp").unwrap();
    t.commit().unwrap();

    let store = db.store();
    let reads_before = store.stats().page_reads();
    let negatives_before = store.pool_stats().filter_negatives;
    assert!(store.elements_named("wisp").is_empty());
    assert!(store.element_by_id("wisp-id").is_none());
    assert_eq!(
        store.stats().page_reads(),
        reads_before,
        "absent probes must not read a single page with filters on"
    );
    assert_eq!(store.pool_stats().filter_negatives, negatives_before + 2);

    // The renamed-to name still resolves — the filter only skips descents
    // for keys it has never admitted or whose last holder vanished.
    assert_eq!(store.elements_named("wosp").len(), 1);
}
