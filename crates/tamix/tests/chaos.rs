//! Chaos test: a scaled-down TaMix CLUSTER1 run under injected faults,
//! for every protocol in the contest. Only compiled with the
//! `failpoints` feature (`cargo test -p xtc-tamix --features failpoints`).
//!
//! Asserts the three fault-tolerance guarantees:
//! 1. **No hangs** — a watchdog bounds each protocol's run.
//! 2. **No lost updates** — the document's structural invariants hold
//!    after the storm (aborted transactions left no partial writes).
//! 3. **Retried victims eventually commit** — fault budgets (`max_hits`)
//!    dry up, so the retry loop converges and work still commits.

#![cfg(feature = "failpoints")]

use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;
use xtc_core::{IsolationLevel, RetryPolicy, XtcConfig, XtcDb};
use xtc_failpoint::FailAction;
use xtc_protocols::ALL_PROTOCOLS;
use xtc_tamix::txns::TxnKind;
use xtc_tamix::{bib, run_cluster1_on, BibConfig, RunReport, TamixParams};

/// Per-protocol watchdog: generous because 11 protocols share the
/// machine with whatever else the test host runs.
const WATCHDOG: Duration = Duration::from_secs(120);

/// The failpoint registry is process-global; tests arming it must not
/// overlap (`cargo test` runs `#[test]` functions on multiple threads).
static STORM_LOCK: Mutex<()> = Mutex::new(());

/// The same invariants `tests/end_to_end.rs` checks after a clean run:
/// topics neither vanish nor multiply, books keep their five children,
/// lends name a person, and no lock leaked.
fn assert_document_consistent(db: &XtcDb, cfg: &BibConfig, proto: &str) {
    let store = db.store();
    let topics = store.elements_named("topic").len() + store.elements_named("subject").len();
    assert_eq!(topics, cfg.topics, "{proto}: topics vanished or multiplied");
    let mut books_seen = 0;
    for t in 0..cfg.topics {
        let topic = store
            .element_by_id(&format!("t{t}"))
            .unwrap_or_else(|| panic!("{proto}: topic t{t} unresolvable"));
        for book in store.element_children(&topic) {
            books_seen += 1;
            let names: Vec<String> = store
                .element_children(&book)
                .iter()
                .map(|c| store.name_of(c).unwrap())
                .collect();
            assert_eq!(
                names,
                ["title", "author", "price", "chapters", "history"],
                "{proto}: book structure broken"
            );
            let history = store.element_children(&book).pop().unwrap();
            for lend in store.element_children(&history) {
                assert_eq!(store.name_of(&lend).as_deref(), Some("lend"), "{proto}");
                assert!(
                    store.attribute_value(&lend, "person").is_some(),
                    "{proto}: lend lost its person attribute"
                );
            }
        }
    }
    assert_eq!(books_seen, store.elements_named("book").len(), "{proto}");
    assert_eq!(db.lock_table().granted_count(), 0, "{proto}: lock leaked");
}

/// Arms every failpoint site with a finite budget. Budgets guarantee the
/// storm passes: once they are exhausted the system must converge.
fn arm_failpoints(seed: u64) {
    xtc_failpoint::clear();
    xtc_failpoint::set_seed(seed);
    xtc_failpoint::configure("lock.acquire", 0.02, FailAction::Error, Some(40));
    xtc_failpoint::configure(
        "store.page_read",
        0.01,
        FailAction::Delay(Duration::from_millis(1)),
        Some(50),
    );
    xtc_failpoint::configure(
        "btree.split",
        0.05,
        FailAction::Delay(Duration::from_millis(1)),
        Some(20),
    );
    xtc_failpoint::configure("txn.commit", 0.05, FailAction::Error, Some(10));
}

fn chaos_run(proto: &str) -> (RunReport, u64) {
    let mut params = TamixParams::cluster1(proto, IsolationLevel::Repeatable, 4);
    params.clients = 1;
    params.mix = vec![
        (TxnKind::QueryBook, 3),
        (TxnKind::Chapter, 2),
        (TxnKind::RenameTopic, 1),
        (TxnKind::LendAndReturn, 3),
    ];
    params.duration = Duration::from_millis(1200);
    params.wait_after_commit = Duration::from_millis(2);
    params.wait_after_operation = Duration::ZERO;
    params.initial_wait_max = Duration::from_millis(5);
    params.retry = Some(RetryPolicy {
        max_attempts: 6,
        base: Duration::from_micros(200),
        cap: Duration::from_millis(8),
        ..RetryPolicy::default()
    });
    params.escalation_threshold = Some(200);

    let cfg = BibConfig::tiny();
    let db = Arc::new(XtcDb::new(XtcConfig {
        protocol: params.protocol.clone(),
        isolation: params.isolation,
        lock_depth: params.lock_depth,
        lock_timeout: params.lock_timeout,
        victim_policy: params.victim_policy,
        escalation_threshold: params.escalation_threshold,
        escalated_depth: params.escalated_depth,
        ..XtcConfig::default()
    }));
    // Generate the document *before* arming the failpoints: the storm is
    // aimed at the workload, not at setup.
    bib::generate_into(&db, &cfg);
    arm_failpoints(0xC0FFEE ^ proto.len() as u64);

    let report = run_cluster1_on(&db, &params, &cfg);

    let injected = xtc_failpoint::hits("lock.acquire")
        + xtc_failpoint::hits("store.page_read")
        + xtc_failpoint::hits("btree.split")
        + xtc_failpoint::hits("txn.commit");
    xtc_failpoint::clear();
    assert_document_consistent(&db, &cfg, proto);
    (report, injected)
}

#[test]
fn chaos_cluster1_survives_injected_faults_under_every_protocol() {
    let _storm = STORM_LOCK.lock().unwrap();
    let mut total_injected = 0u64;
    let mut any_committed_after_retry = false;
    for proto in ALL_PROTOCOLS {
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            let out = chaos_run(proto);
            let _ = tx.send(());
            out
        });
        // Guarantee 1: no hangs. If the run wedges, fail loudly instead
        // of letting the harness time the whole suite out.
        rx.recv_timeout(WATCHDOG)
            .unwrap_or_else(|_| panic!("{proto}: chaos run hung past {WATCHDOG:?}"));
        let (report, injected) = handle.join().expect("chaos run panicked");

        // Guarantee 3: faults dried up and retried work still commits.
        assert!(
            report.committed() > 0,
            "{proto}: nothing committed under fault injection"
        );
        assert!(
            report.retries.runs > 0,
            "{proto}: retry loop never engaged"
        );
        total_injected += injected;
        any_committed_after_retry |= report.retries.committed_after_retry > 0;
    }
    // Across 11 protocols the storm must have actually fired and at least
    // one aborted transaction must have committed on a retry — otherwise
    // this test exercises nothing.
    assert!(total_injected > 0, "no faults were injected at all");
    assert!(
        any_committed_after_retry,
        "no retried transaction ever committed"
    );
}

#[test]
fn injected_lock_failures_are_not_counted_as_deadlocks() {
    // A focused check on classification: with only the lock.acquire site
    // armed, aborts surface as retryable-but-not-deadlock.
    let _storm = STORM_LOCK.lock().unwrap();
    let proto = "taDOM3+";
    let cfg = BibConfig::tiny();
    let db = Arc::new(XtcDb::new(XtcConfig {
        protocol: proto.to_string(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 4,
        lock_timeout: Duration::from_secs(5),
        ..XtcConfig::default()
    }));
    bib::generate_into(&db, &cfg);

    xtc_failpoint::clear();
    xtc_failpoint::set_seed(7);
    xtc_failpoint::configure("lock.acquire", 1.0, FailAction::Error, Some(1));
    let policy = RetryPolicy {
        max_attempts: 4,
        base: Duration::from_micros(100),
        cap: Duration::from_millis(1),
        ..RetryPolicy::default()
    };
    let (res, stats) = db.run_retrying(&policy, |txn| {
        let root = txn.root()?.expect("root");
        txn.element_children(&root).map(|_| ())
    });
    xtc_failpoint::clear();
    assert!(res.is_ok(), "after the single fault dries up, work commits");
    assert_eq!(stats.other_retryable_aborts, 1, "injected ≠ deadlock");
    assert_eq!(stats.deadlock_aborts, 0);
    assert!(stats.committed_after_retry);
    assert_eq!(db.lock_table().granted_count(), 0);
}
