//! The TaMix coordinator: concurrently active transaction slots with the
//! paper's think times, running CLUSTER1 and CLUSTER2 (§4.3).

use crate::bib::{self, BibConfig};
use crate::metrics::{RetryTotals, RunReport, TxnOutcome, TypeStats};
use crate::txns::{run_txn, run_txn_body, Pacing, PacingMode, TxnKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xtc_core::{
    AdmissionPolicy, IsolationLevel, RetryPolicy, VictimPolicy, XtcConfig, XtcDb, XtcError,
};

/// Parameters of a TaMix run. The defaults are the paper's CLUSTER1
/// setting scaled down 50× in time (see DESIGN.md substitutions): the
/// paper ran 5-minute rounds with waitAfterCommit = 2500 ms and
/// waitAfterOperation = 100 ms across 3 clients × 24 slots.
#[derive(Debug, Clone)]
pub struct TamixParams {
    /// Protocol under test.
    pub protocol: String,
    /// Isolation level.
    pub isolation: IsolationLevel,
    /// Lock depth.
    pub lock_depth: u32,
    /// Number of clients (the paper: 3).
    pub clients: usize,
    /// Transaction mix per client: (kind, active slots). CLUSTER1:
    /// 9 TAqueryBook, 5 TAchapter, 2 TArenameTopic, 8 TAlendAndReturn.
    pub mix: Vec<(TxnKind, usize)>,
    /// Run duration.
    pub duration: Duration,
    /// Pause after each commit/abort before the slot starts anew.
    pub wait_after_commit: Duration,
    /// Pause after each DOM operation inside a transaction.
    pub wait_after_operation: Duration,
    /// Random wait before a slot's first transaction, `0..=max`.
    pub initial_wait_max: Duration,
    /// Lock-wait timeout.
    pub lock_timeout: Duration,
    /// RNG seed.
    pub seed: u64,
    /// Retry policy: when set, aborted transactions are retried with
    /// backoff instead of counting one abort and moving on (the paper's
    /// clients simply restart; this makes the restart loop explicit).
    pub retry: Option<RetryPolicy>,
    /// Deadlock victim selection policy.
    pub victim_policy: VictimPolicy,
    /// Lock escalation threshold (held locks), `None` = disabled.
    pub escalation_threshold: Option<usize>,
    /// Effective lock depth after escalation.
    pub escalated_depth: u32,
    /// Per-transaction lock cache (on by default; off measures the
    /// uncached baseline).
    pub lock_cache: bool,
    /// Simulated per-page-read latency charged to the virtual clock (and
    /// spun in wall time by the buffer pool). `ZERO` by default: CLUSTER1
    /// throughput runs model an in-memory buffer; figure-shape tests set
    /// it to make page-read cost a deterministic virtual-time term.
    pub read_latency: Duration,
    /// Per-transaction virtual-time deadline budget
    /// ([`XtcConfig::txn_deadline`]); `None` = no deadline.
    pub txn_deadline: Option<Duration>,
    /// Admission control: maximum concurrently admitted transactions
    /// ([`XtcConfig::max_in_flight`]); `None` = unbounded.
    pub max_in_flight: Option<usize>,
    /// Policy at the admission gate when `max_in_flight` is reached.
    pub admission: AdmissionPolicy,
    /// With a WAL configured, take a fuzzy checkpoint at this interval
    /// during the run (a background checkpointer thread) so recovery
    /// time stays bounded under sustained load. `None` = no
    /// checkpointer.
    pub checkpoint_every: Option<Duration>,
    /// Base storage configuration when [`run_cluster1`] builds the
    /// database itself: eviction policy, residency budget, file backend,
    /// index filters. [`TamixParams::read_latency`] is applied on top
    /// (it predates this field and keeps its priority). Ignored by
    /// [`run_cluster1_on`] — there the caller's database wins.
    pub store: xtc_node::DocStoreConfig,
    /// Background-writeback cadence ([`XtcConfig::writeback_interval`])
    /// when [`run_cluster1`] builds the database itself.
    pub writeback_interval: Option<Duration>,
    /// How the run's pauses (initial stagger, waitAfterOperation,
    /// waitAfterCommit, checkpointer naps) are realized: charged to the
    /// virtual clock only, or additionally slept on the wall clock.
    /// [`TamixParams::cluster1`] opts into [`PacingMode::Wall`] — the
    /// paper's client behavior, and what the figure-shape expectations
    /// are calibrated against.
    pub pacing: PacingMode,
}

impl TamixParams {
    /// CLUSTER1 at benchmark scale (50× faster than the paper's wall
    /// clock, same structure: 72 active transactions).
    pub fn cluster1(protocol: &str, isolation: IsolationLevel, lock_depth: u32) -> Self {
        TamixParams {
            protocol: protocol.to_string(),
            isolation,
            lock_depth,
            clients: 3,
            mix: vec![
                (TxnKind::QueryBook, 9),
                (TxnKind::Chapter, 5),
                (TxnKind::RenameTopic, 2),
                (TxnKind::LendAndReturn, 8),
            ],
            duration: Duration::from_millis(4000),
            wait_after_commit: Duration::from_millis(50),
            wait_after_operation: Duration::from_millis(2),
            initial_wait_max: Duration::from_millis(100),
            lock_timeout: Duration::from_secs(5),
            seed: 42,
            retry: None,
            victim_policy: VictimPolicy::Youngest,
            escalation_threshold: None,
            escalated_depth: 1,
            lock_cache: true,
            read_latency: Duration::ZERO,
            txn_deadline: None,
            max_in_flight: None,
            admission: AdmissionPolicy::default(),
            checkpoint_every: None,
            store: xtc_node::DocStoreConfig::default(),
            writeback_interval: None,
            pacing: PacingMode::Wall,
        }
    }

    /// Total concurrently active transaction slots.
    pub fn total_slots(&self) -> usize {
        self.clients * self.mix.iter().map(|(_, n)| n).sum::<usize>()
    }

    /// Scales every wall-clock parameter by `f` (e.g. `f = 50.0` restores
    /// the paper's original times from the benchmark defaults).
    pub fn scale_time(mut self, f: f64) -> Self {
        let scale = |d: Duration| Duration::from_secs_f64(d.as_secs_f64() * f);
        self.duration = scale(self.duration);
        self.wait_after_commit = scale(self.wait_after_commit);
        self.wait_after_operation = scale(self.wait_after_operation);
        self.initial_wait_max = scale(self.initial_wait_max);
        self
    }
}

/// Runs CLUSTER1 (or any custom mix) and returns the aggregated report.
pub fn run_cluster1(params: &TamixParams, bib_cfg: &BibConfig) -> RunReport {
    let db = Arc::new(XtcDb::new(XtcConfig {
        protocol: params.protocol.clone(),
        isolation: params.isolation,
        lock_depth: params.lock_depth,
        lock_timeout: params.lock_timeout,
        victim_policy: params.victim_policy,
        escalation_threshold: params.escalation_threshold,
        escalated_depth: params.escalated_depth,
        lock_cache: params.lock_cache,
        store: xtc_node::DocStoreConfig {
            read_latency: params.read_latency,
            ..params.store.clone()
        },
        txn_deadline: params.txn_deadline,
        max_in_flight: params.max_in_flight,
        admission: params.admission,
        writeback_interval: params.writeback_interval,
        ..XtcConfig::default()
    }));
    bib::generate_into(&db, bib_cfg);
    run_cluster1_on(&db, params, bib_cfg)
}

/// Runs CLUSTER1 against an existing, already-populated database. The
/// caller keeps the handle, so it can check document invariants after
/// the run — the chaos tests rely on this.
///
/// The database's protocol/isolation/victim-policy configuration wins
/// over the corresponding `params` fields (those only matter when
/// [`run_cluster1`] builds the database itself); `params` still drives
/// the mix, pacing, duration, and retry policy.
pub fn run_cluster1_on(db: &Arc<XtcDb>, params: &TamixParams, bib_cfg: &BibConfig) -> RunReport {
    let reads_before = db.store().stats().page_reads();
    let pool_before = db.store().pool_stats();
    let vt_before = db.obs().vt();

    let deadline = Instant::now() + params.duration;
    let start = Instant::now();
    // Background checkpointer: bounds recovery time under sustained load.
    // Checkpoint failures are tolerated (the engine may have been crashed
    // by a chaos failpoint mid-run — the workload threads handle that).
    let checkpointer = params.checkpoint_every.filter(|_| db.wal().is_some()).map(|every| {
        let db = db.clone();
        let mode = params.pacing;
        std::thread::spawn(move || {
            let mut taken = 0usize;
            while Instant::now() < deadline {
                match mode {
                    PacingMode::Wall => {
                        // The nap is simulated idle time like any other
                        // pause of the run: charge it to the virtual
                        // clock, then sleep it.
                        let nap = every.min(deadline.saturating_duration_since(Instant::now()));
                        db.obs()
                            .charge(xtc_obs::CostKind::Think, nap.as_micros() as u64);
                        std::thread::sleep(nap);
                    }
                    PacingMode::Virtual => {
                        // Pace checkpoints by the run's *virtual* clock:
                        // wait until the workload threads have charged
                        // another `every` worth of simulated time,
                        // polling in small wall slices so an idle run
                        // still honors the wall deadline.
                        let target = db.obs().vt().total_us() + every.as_micros() as u64;
                        while Instant::now() < deadline && db.obs().vt().total_us() < target {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                }
                if Instant::now() >= deadline {
                    break;
                }
                if db.checkpoint().is_ok() {
                    taken += 1;
                }
            }
            taken
        })
    });
    let mut slot_no = 0usize;
    let mut handles = Vec::new();
    for _client in 0..params.clients {
        for &(kind, count) in &params.mix {
            for _ in 0..count {
                slot_no += 1;
                let db = db.clone();
                let cfg = bib_cfg.clone();
                let p = params.clone();
                let seed = params.seed.wrapping_add(slot_no as u64 * 7919);
                handles.push(std::thread::spawn(move || {
                    slot_loop(&db, kind, &cfg, &p, seed, deadline)
                }));
            }
        }
    }
    let mut per_type: BTreeMap<&'static str, TypeStats> = BTreeMap::new();
    let mut retries = RetryTotals::default();
    for h in handles {
        let (kind, stats, slot_retries) = h.join().expect("slot thread panicked");
        per_type.entry(kind.name()).or_default().merge(&stats);
        retries.merge(&slot_retries);
    }
    if let Some(h) = checkpointer {
        let _ = h.join();
    }
    let elapsed = start.elapsed();
    let dl = db.lock_table().deadlocks();
    RunReport {
        protocol: params.protocol.clone(),
        isolation: params.isolation.name().to_string(),
        lock_depth: params.lock_depth,
        elapsed,
        per_type,
        deadlocks: dl.total(),
        conversion_deadlocks: dl.conversion_caused(),
        lock_requests: db.lock_table().requests(),
        table_requests: db.lock_table().table_requests(),
        cache_hits: db.lock_table().cache_hits(),
        page_reads: db.store().stats().page_reads() - reads_before,
        pool: crate::metrics::PoolReport::delta(&pool_before, &db.store().pool_stats()),
        escalations: db.lock_table().escalations(),
        retries,
        txn_deadline_us: params.txn_deadline.map(|d| d.as_micros() as u64),
        vt: db.obs().vt().saturating_sub(vt_before),
    }
}

/// Maps an abort error to its outcome class. Lock-wait timeouts and
/// exhausted transaction deadlines both count as timeout aborts — the
/// two faces of "ran out of time".
fn classify_abort(e: &XtcError) -> TxnOutcome {
    if e.is_deadlock() {
        TxnOutcome::AbortedDeadlock
    } else if e.is_timeout() {
        TxnOutcome::AbortedTimeout
    } else {
        TxnOutcome::AbortedOther
    }
}

/// One transaction slot: random initial wait, then transactions of one
/// type back to back with waitAfterCommit pauses, until the deadline.
fn slot_loop(
    db: &XtcDb,
    kind: TxnKind,
    cfg: &BibConfig,
    params: &TamixParams,
    seed: u64,
    deadline: Instant,
) -> (TxnKind, TypeStats, RetryTotals) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut stats = TypeStats::default();
    let mut retries = RetryTotals::default();
    // Each slot jitters from its own seed so concurrent retry loops do
    // not back off in lockstep.
    let retry_policy = params.retry.clone().map(|p| RetryPolicy {
        seed: p.seed.wrapping_add(seed),
        ..p
    });
    let pacing = Pacing {
        wait_after_operation: params.wait_after_operation,
        mode: params.pacing,
    };
    if !params.initial_wait_max.is_zero() {
        let wait = params
            .initial_wait_max
            .mul_f64(rng.random::<f64>())
            .min(deadline.saturating_duration_since(Instant::now()));
        db.obs()
            .charge(xtc_obs::CostKind::Think, wait.as_micros() as u64);
        if params.pacing == PacingMode::Wall {
            std::thread::sleep(wait);
        }
    }
    while Instant::now() < deadline {
        let started = Instant::now();
        let result = match &retry_policy {
            Some(policy) => {
                let (res, run_stats) = db.run_retrying(policy, |txn| {
                    run_txn_body(txn, kind, cfg, &mut rng, pacing)
                });
                retries.record(&run_stats);
                res
            }
            None => run_txn(db, kind, cfg, &mut rng, pacing),
        };
        let outcome = match result {
            Ok(true) => TxnOutcome::Committed,
            Ok(false) => TxnOutcome::Empty,
            Err(e) => classify_abort(&e),
        };
        stats.record(outcome, started.elapsed());
        let pause = params
            .wait_after_commit
            .min(deadline.saturating_duration_since(Instant::now()));
        db.obs()
            .charge(xtc_obs::CostKind::Think, pause.as_micros() as u64);
        if params.pacing == PacingMode::Wall {
            std::thread::sleep(pause);
        }
    }
    (kind, stats, retries)
}

/// Report of a CLUSTER2 run: "a single execution of TAdelBook in
/// single-user mode, using isolation level repeatable. Here, transaction
/// duration is very expressive and characterizes the amount of locking
/// overhead necessary" (§4.3, §5.3).
#[derive(Debug, Clone)]
pub struct Cluster2Report {
    /// Protocol under test.
    pub protocol: String,
    /// Execution time of the TAdelBook transaction.
    pub duration: Duration,
    /// Lock requests the deletion needed.
    pub lock_requests: u64,
    /// Logical page reads (the *-2PL IDX scans show up here).
    pub page_reads: u64,
    /// Virtual-time totals of the deletion (averaged over repetitions).
    /// `page_read_us` is the deterministic term the Fig. 11 shape test
    /// compares instead of wall-clock duration.
    pub vt: xtc_obs::VirtualTimes,
}

/// Per-page-read latency used in CLUSTER2 runs: converts page accesses
/// into wall-clock time the way the paper's IDE disk did, so the *-2PL
/// group's IDX location steps (which re-traverse the doomed subtree
/// through the node manager) dominate the deletion time as in Fig. 11.
pub const CLUSTER2_READ_LATENCY: Duration = Duration::from_micros(10);

/// Runs CLUSTER2 for one protocol: a single TAdelBook at isolation level
/// repeatable, timed. `repetitions` > 1 deletes several distinct books
/// and averages (fresh database per repetition).
pub fn run_cluster2(protocol: &str, bib_cfg: &BibConfig, repetitions: u32) -> Cluster2Report {
    let mut total = Duration::ZERO;
    let mut total_requests = 0u64;
    let mut total_reads = 0u64;
    let mut total_vt = xtc_obs::VirtualTimes::default();
    for rep in 0..repetitions.max(1) {
        let db = XtcDb::new(XtcConfig {
            protocol: protocol.to_string(),
            isolation: IsolationLevel::Repeatable,
            lock_depth: 4,
            lock_timeout: Duration::from_secs(30),
            store: xtc_node::DocStoreConfig {
                read_latency: CLUSTER2_READ_LATENCY,
                ..xtc_node::DocStoreConfig::default()
            },
            ..XtcConfig::default()
        });
        bib::generate_into(&db, bib_cfg);
        let mut rng = SmallRng::seed_from_u64(1000 + rep as u64);
        let reads0 = db.store().stats().page_reads();
        let reqs0 = db.lock_table().requests();
        let vt0 = db.obs().vt();
        let started = Instant::now();
        run_txn(
            &db,
            TxnKind::DelBook,
            bib_cfg,
            &mut rng,
            Pacing::default(),
        )
        .expect("single-user TAdelBook must commit");
        total += started.elapsed();
        total_requests += db.lock_table().requests() - reqs0;
        total_reads += db.store().stats().page_reads() - reads0;
        total_vt = total_vt.merged(db.obs().vt().saturating_sub(vt0));
    }
    let n = repetitions.max(1);
    Cluster2Report {
        protocol: protocol.to_string(),
        duration: total / n,
        lock_requests: total_requests / n as u64,
        page_reads: total_reads / n as u64,
        vt: total_vt.scaled_down(n as u64),
    }
}

/// Parameters of the CLUSTER2 long-reader scenario: one report reader
/// pinned on the whole document while writers compete.
#[derive(Debug, Clone)]
pub struct LongReaderParams {
    /// Protocol under test.
    pub protocol: String,
    /// How long the writers run while the reader stays pinned.
    pub duration: Duration,
    /// Concurrent chapter-updating writers.
    pub writers: usize,
    /// RNG seed.
    pub seed: u64,
    /// Lock-wait timeout (kept short: a blocked pessimistic writer
    /// should cycle through timeout-and-retry instead of stalling the
    /// whole cell).
    pub lock_timeout: Duration,
    /// Document scale.
    pub bib: BibConfig,
}

impl LongReaderParams {
    /// A quick cell: a tiny bib, two writers, a short writer window.
    pub fn quick(protocol: &str) -> Self {
        LongReaderParams {
            protocol: protocol.to_string(),
            duration: Duration::from_millis(400),
            writers: 2,
            seed: 42,
            lock_timeout: Duration::from_millis(50),
            bib: BibConfig::tiny(),
        }
    }
}

/// Report of a long-reader run.
#[derive(Debug, Clone)]
pub struct LongReaderReport {
    /// Protocol under test.
    pub protocol: String,
    /// Writer transactions committed while the reader was pinned.
    pub writer_commits: u64,
    /// Writer aborts (after retries were exhausted).
    pub writer_aborts: u64,
    /// Nodes the reader visited on its full-document walk.
    pub reader_reads: u64,
    /// Virtual lock-wait microseconds charged to the reader. Zero under
    /// a versioned protocol — snapshot reads never touch the lock table.
    pub reader_lock_wait_us: u64,
    /// Whether the value the reader sampled during its walk read the
    /// same at the end, after all writer commits — repeatable-read
    /// stability for the pessimistic field, snapshot stability for the
    /// versioned one.
    pub reader_consistent: bool,
    /// Wall time of the writer window.
    pub elapsed: Duration,
    /// Virtual-time totals of the whole run.
    pub vt: xtc_obs::VirtualTimes,
}

/// The CLUSTER2 long-reader scenario: a single report reader walks the
/// *entire* document navigationally at isolation level repeatable and
/// then stays pinned (transaction open) while `writers` chapter-update
/// writers run for `duration`. Under every pessimistic protocol the
/// reader's read locks serialize the writers behind it — their
/// update-text steps time out and retry until the reader ends. Under
/// the versioned contestants (taMVCC, taOCC) the reader holds no locks
/// at all, so writers commit freely while the reader's snapshot stays
/// stable.
pub fn run_long_reader(params: &LongReaderParams) -> LongReaderReport {
    use std::sync::mpsc;

    let db = Arc::new(XtcDb::new(XtcConfig {
        protocol: params.protocol.clone(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 4,
        lock_timeout: params.lock_timeout,
        ..XtcConfig::default()
    }));
    bib::generate_into(&db, &params.bib);
    let vt_before = db.obs().vt();

    let (walked_tx, walked_rx) = mpsc::channel::<()>();
    let (stop_tx, stop_rx) = mpsc::channel::<()>();
    let reader_db = db.clone();
    let reader = std::thread::spawn(move || {
        let txn = reader_db.begin();
        let mut visited = 0u64;
        let mut sample: Option<(xtc_core::SplId, Option<String>)> = None;
        // Full-document DFS over navigation edges — the report reader.
        let mut stack: Vec<xtc_core::SplId> = txn.root().ok().flatten().into_iter().collect();
        while let Some(n) = stack.pop() {
            let Ok(data) = txn.node(&n) else { break };
            visited += 1;
            if sample.is_none() && matches!(data, Some(xtc_core::NodeData::Text)) {
                sample = Some((n.clone(), txn.text_content(&n).ok().flatten()));
            }
            if matches!(
                data,
                Some(xtc_core::NodeData::Element { .. })
                    | Some(xtc_core::NodeData::AttributeRoot)
            ) {
                let mut kids = Vec::new();
                let mut c = txn.first_child(&n).ok().flatten();
                while let Some(cur) = c {
                    c = txn.next_sibling(&cur).ok().flatten();
                    kids.push(cur);
                }
                stack.extend(kids.into_iter().rev());
            }
        }
        let _ = walked_tx.send(());
        // Stay pinned (transaction open, locks/snapshot held) until the
        // writer window closes.
        let _ = stop_rx.recv();
        let consistent = match &sample {
            Some((n, first)) => txn.text_content(n).ok().flatten() == *first,
            None => true,
        };
        let lock_wait = reader_db
            .obs()
            .txn_vt(txn.id())
            .map(|vt| vt.lock_wait_us)
            .unwrap_or(0);
        let _ = txn.commit();
        (visited, lock_wait, consistent)
    });
    walked_rx.recv().expect("reader finished its walk");

    let deadline = Instant::now() + params.duration;
    let started = Instant::now();
    let mut writer_handles = Vec::new();
    for w in 0..params.writers {
        let db = db.clone();
        let cfg = params.bib.clone();
        let seed = params.seed.wrapping_add(w as u64 * 6151);
        writer_handles.push(std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut commits = 0u64;
            let mut aborts = 0u64;
            while Instant::now() < deadline {
                // The seeded jittered backoff of the retry loop is the
                // contention manager for validation aborts (taOCC) and
                // timeout aborts (the pessimistic field) alike.
                let policy = RetryPolicy {
                    max_attempts: 4,
                    deadline: Some(deadline.saturating_duration_since(Instant::now())),
                    seed,
                    ..RetryPolicy::default()
                };
                let (res, _stats) = db.run_retrying(&policy, |txn| {
                    run_txn_body(txn, TxnKind::Chapter, &cfg, &mut rng, Pacing::default())
                });
                match res {
                    Ok(true) => commits += 1,
                    Ok(false) => {}
                    Err(_) => aborts += 1,
                }
            }
            (commits, aborts)
        }));
    }
    let mut writer_commits = 0u64;
    let mut writer_aborts = 0u64;
    for h in writer_handles {
        let (c, a) = h.join().expect("writer thread panicked");
        writer_commits += c;
        writer_aborts += a;
    }
    let elapsed = started.elapsed();
    let _ = stop_tx.send(());
    let (reader_reads, reader_lock_wait_us, reader_consistent) =
        reader.join().expect("reader thread panicked");

    LongReaderReport {
        protocol: params.protocol.clone(),
        writer_commits,
        writer_aborts,
        reader_reads,
        reader_lock_wait_us,
        reader_consistent,
        elapsed,
        vt: db.obs().vt().saturating_sub(vt_before),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_cluster1_run_produces_sane_report() {
        let mut params = TamixParams::cluster1("taDOM3+", IsolationLevel::Repeatable, 4);
        params.clients = 1;
        params.mix = vec![
            (TxnKind::QueryBook, 2),
            (TxnKind::Chapter, 1),
            (TxnKind::LendAndReturn, 1),
        ];
        // Generous duration: unit tests may share the machine with
        // release benchmarks.
        params.duration = Duration::from_millis(1200);
        params.wait_after_commit = Duration::from_millis(5);
        params.wait_after_operation = Duration::ZERO;
        params.initial_wait_max = Duration::from_millis(5);
        let report = run_cluster1(&params, &BibConfig::tiny());
        assert!(report.committed() > 0, "some transactions must commit");
        assert!(report.lock_requests > 0);
        assert_eq!(report.protocol, "taDOM3+");
        assert!(report.per_type.contains_key("TAqueryBook"));
    }

    #[test]
    fn cluster2_star2pl_reads_more_pages_than_tadom() {
        let cfg = BibConfig::tiny();
        let star = run_cluster2("Node2PL", &cfg, 1);
        let tadom = run_cluster2("taDOM3+", &cfg, 1);
        assert!(
            star.page_reads > tadom.page_reads,
            "IDX subtree scan must cost extra page reads ({} vs {})",
            star.page_reads,
            tadom.page_reads
        );
    }

    #[test]
    fn long_reader_under_tamvcc_never_waits_and_writers_commit() {
        let mut params = LongReaderParams::quick("taMVCC");
        params.duration = Duration::from_millis(300);
        let report = run_long_reader(&params);
        assert!(report.reader_reads > 50, "reader walked the document");
        assert_eq!(
            report.reader_lock_wait_us, 0,
            "snapshot reads never touch the lock table"
        );
        assert!(report.reader_consistent, "snapshot stays stable");
        // The reader never blocks the writers; the only aborts possible
        // are writer-vs-writer first-updater conflicts, which backoff
        // resolves, so commits dominate.
        assert!(
            report.writer_commits > report.writer_aborts,
            "writers commit freely while the reader stays pinned ({} commits, {} aborts)",
            report.writer_commits,
            report.writer_aborts
        );
    }

    #[test]
    fn long_reader_under_pessimistic_protocol_blocks_writers() {
        let mut params = LongReaderParams::quick("taDOM3+");
        params.duration = Duration::from_millis(300);
        let report = run_long_reader(&params);
        assert!(report.reader_consistent, "repeatable read holds");
        assert_eq!(
            report.writer_commits, 0,
            "chapter updates time out behind the pinned reader's read locks"
        );
    }

    #[test]
    fn cluster1_under_isolation_none_still_commits() {
        let mut params = TamixParams::cluster1("URIX", IsolationLevel::None, 4);
        params.clients = 1;
        params.mix = vec![(TxnKind::QueryBook, 2), (TxnKind::LendAndReturn, 2)];
        params.duration = Duration::from_millis(1000);
        params.wait_after_commit = Duration::from_millis(2);
        params.wait_after_operation = Duration::ZERO;
        params.initial_wait_max = Duration::ZERO;
        let report = run_cluster1(&params, &BibConfig::tiny());
        assert!(report.committed() > 0);
        assert_eq!(report.deadlocks, 0, "no locks, no deadlocks");
    }
}
