//! Chaos-at-scale harness: crash–recover–resume under load.
//!
//! One [`run_crash_recover_resume`] call plays the full resilience story
//! the chaos tests and the `chaos` bench binary assert on:
//!
//! 1. build a WAL-backed database, load the bib document, checkpoint;
//! 2. arm a kill failpoint and run a scaled-down CLUSTER1 storm plus a
//!    set of *marker writers* whose commit acknowledgements form a fate
//!    ledger ([`Fate`]);
//! 3. crash (at the failpoint mid-run, or deliberately at phase end if
//!    the armed fault never fired);
//! 4. recover from the durable log prefix, measuring recovery time on
//!    the virtual clock ([`xtc_obs::CostKind::Recovery`]);
//! 5. verify the contract — every acknowledged commit survived, every
//!    clean failure is absent, document invariants and secondary
//!    indexes hold;
//! 6. resume the remaining workload on the recovered database and
//!    verify again.
//!
//! The harness *reports* violations ([`ChaosReport`]) instead of
//! panicking, so the bench binary can sweep the whole protocol × fault
//! matrix and emit one JSON document; the tests assert on the report.

use crate::bib::{self, BibConfig};
use crate::driver::{run_cluster1_on, TamixParams};
use crate::metrics::RunReport;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xtc_core::wal::WalConfig;
use xtc_core::{recover_from, RetryPolicy, XtcConfig, XtcDb, XtcError};

/// How a marker writer's transaction ended, keyed by its unique marker
/// element name. The durable contract is checked against this ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// `commit()` returned `Ok`: durable, must survive recovery.
    Committed,
    /// Failed cleanly before a commit record could exist: must not
    /// survive recovery.
    Absent,
    /// Died inside the commit protocol (`XtcError::Wal`): the commit
    /// record may or may not sit in the durable prefix — either fate is
    /// correct, but never a partial one.
    Unknown,
}

/// Parameters of one crash–recover–resume scenario.
#[derive(Debug, Clone)]
pub struct ChaosParams {
    /// Workload shape of both phases (protocol, mix, pacing, retry,
    /// deadline/admission settings). `tamix.duration` is the pre-crash
    /// phase length.
    pub tamix: TamixParams,
    /// Document scale.
    pub bib: BibConfig,
    /// Failpoint site armed as the kill (e.g. `wal.commit`, `wal.flush`,
    /// `wal.fsync`, `wal.append_io`, `store.page_read_io`,
    /// `btree.split`).
    pub kill_site: String,
    /// Probability per evaluation that the kill site fires.
    pub kill_probability: f64,
    /// Fault budget (`None` = a dead device that fails every attempt —
    /// guaranteed permanent; a small budget models transient faults that
    /// dry up and may never kill).
    pub kill_budget: Option<u64>,
    /// Length of the post-recovery resume phase.
    pub resume_duration: Duration,
    /// Marker writer threads (each writes `markers_per_worker` ledgered
    /// transactions during phase 1).
    pub workers: usize,
    /// Ledgered transactions per marker writer.
    pub markers_per_worker: usize,
}

impl ChaosParams {
    /// A compact scenario over `protocol` × `kill_site`, sized so a full
    /// 11-protocol sweep stays CI-friendly.
    pub fn quick(protocol: &str, kill_site: &str, seed: u64) -> Self {
        let mut tamix = TamixParams::cluster1(
            protocol,
            xtc_core::IsolationLevel::Repeatable,
            4,
        );
        tamix.clients = 1;
        tamix.mix = vec![
            (crate::txns::TxnKind::QueryBook, 2),
            (crate::txns::TxnKind::Chapter, 1),
            (crate::txns::TxnKind::LendAndReturn, 2),
        ];
        tamix.duration = Duration::from_millis(500);
        tamix.wait_after_commit = Duration::from_millis(2);
        tamix.wait_after_operation = Duration::ZERO;
        tamix.initial_wait_max = Duration::from_millis(2);
        tamix.lock_timeout = Duration::from_secs(5);
        tamix.seed = seed;
        tamix.retry = Some(RetryPolicy {
            max_attempts: 4,
            base: Duration::from_micros(200),
            cap: Duration::from_millis(4),
            ..RetryPolicy::default()
        });
        tamix.checkpoint_every = Some(Duration::from_millis(120));
        ChaosParams {
            tamix,
            bib: BibConfig::tiny(),
            kill_site: kill_site.to_string(),
            kill_probability: 0.2,
            kill_budget: None,
            resume_duration: Duration::from_millis(400),
            workers: 3,
            markers_per_worker: 3,
        }
    }
}

/// Outcome of one crash–recover–resume scenario. `violations` is empty
/// iff the durable contract held end to end.
#[derive(Debug)]
pub struct ChaosReport {
    /// Protocol under test.
    pub protocol: String,
    /// The armed kill site.
    pub kill_site: String,
    /// `true` when the armed fault actually crashed the engine mid-run
    /// (as opposed to the deliberate end-of-phase crash).
    pub crashed_mid_run: bool,
    /// `true` when the durable log ended in a torn record.
    pub torn_tail: bool,
    /// Recovery time charged to the recovered engine's virtual clock
    /// (µs).
    pub recovery_us: u64,
    /// Wall-clock recovery time (diagnostics; the bound is on
    /// `recovery_us`).
    pub recovery_wall: Duration,
    /// Records scanned from the durable log prefix.
    pub scanned: usize,
    /// Pre-crash phase report.
    pub pre: RunReport,
    /// Post-recovery resume-phase report.
    pub post: RunReport,
    /// Marker ledger size (workers × markers_per_worker).
    pub markers: usize,
    /// Markers whose commit was acknowledged (`Fate::Committed`).
    pub acknowledged: usize,
    /// In-doubt markers (`Fate::Unknown`).
    pub in_doubt: usize,
    /// Contract violations (acknowledged-commit loss, clean-failure
    /// leak, duplicated marker, broken invariant, index mismatch).
    /// Empty = the scenario passed.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Did the scenario uphold the durable contract?
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// FNV-1a digest over the document in document order (ids, names,
/// text). Two databases with equal digests hold the same document —
/// the double-crash test uses this to show repeated recovery converges.
pub fn document_digest(db: &XtcDb) -> u64 {
    let mut nodes = db.store().all_nodes();
    nodes.sort_by(|(a, _), (b, _)| a.cmp(b));
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (id, _) in &nodes {
        eat(id.to_string().as_bytes());
        if let Some(name) = db.store().name_of(id) {
            eat(b"n:");
            eat(name.as_bytes());
        }
        if let Some(text) = db.store().text_of(id) {
            eat(b"t:");
            eat(text.as_bytes());
        }
    }
    h
}

/// Structural invariants of the bib document that every CLUSTER1
/// transaction preserves: topics neither vanish nor multiply, books
/// keep their five children in order, lends name a person, no lock
/// leaked. Returns the violations instead of panicking.
pub fn check_document(db: &XtcDb, cfg: &BibConfig) -> Vec<String> {
    let mut issues = Vec::new();
    let store = db.store();
    let topics = store.elements_named("topic").len() + store.elements_named("subject").len();
    if topics != cfg.topics {
        issues.push(format!("expected {} topics, found {topics}", cfg.topics));
    }
    let mut books_seen = 0;
    for t in 0..cfg.topics {
        let Some(topic) = store.element_by_id(&format!("t{t}")) else {
            issues.push(format!("topic t{t} unresolvable via id index"));
            continue;
        };
        for book in store.element_children(&topic) {
            // Topics also hold the harness's own marker elements; only
            // `book` children carry the five-child structure.
            if store.name_of(&book).as_deref() != Some("book") {
                continue;
            }
            books_seen += 1;
            let names: Vec<String> = store
                .element_children(&book)
                .iter()
                .filter_map(|c| store.name_of(c))
                .collect();
            if names != ["title", "author", "price", "chapters", "history"] {
                issues.push(format!("book {book} structure broken: {names:?}"));
                continue;
            }
            let history = store.element_children(&book).pop().unwrap();
            for lend in store.element_children(&history) {
                if store.name_of(&lend).as_deref() != Some("lend") {
                    issues.push(format!("unexpected child in history of {book}"));
                } else if store.attribute_value(&lend, "person").is_none() {
                    issues.push(format!("lend {lend} lost its person attribute"));
                }
            }
        }
    }
    if books_seen != store.elements_named("book").len() {
        issues.push("books outside topics".to_string());
    }
    issues.extend(store.verify_indexes());
    if db.lock_table().granted_count() != 0 {
        issues.push(format!("{} locks leaked", db.lock_table().granted_count()));
    }
    issues
}

/// Runs one marker writer: `count` ledgered insert transactions, each
/// retried under `policy`, fate recorded per marker name.
fn marker_writer(
    db: &Arc<XtcDb>,
    policy: &RetryPolicy,
    worker: usize,
    count: usize,
    topics: usize,
) -> Vec<(String, Fate)> {
    let mut fates = Vec::new();
    for i in 0..count {
        let marker = format!("mk{worker}x{i}");
        let name = marker.clone();
        let (res, _) = db.run_retrying(policy, move |txn| {
            let topic = txn
                .element_by_id(&format!("t{}", worker % topics))?
                .ok_or(XtcError::Busy)?;
            txn.insert_element(&topic, xtc_core::InsertPos::LastChild, &name)
                .map(|_| ())
        });
        let fate = match res {
            Ok(()) => Fate::Committed,
            Err(XtcError::Wal(_)) => Fate::Unknown,
            Err(_) => Fate::Absent,
        };
        fates.push((marker, fate));
    }
    fates
}

/// Plays one full crash–recover–resume scenario. The caller owns the
/// process-global failpoint registry: hold your storm lock around this
/// call; the harness arms the kill site and clears the registry before
/// recovering.
pub fn run_crash_recover_resume(params: &ChaosParams) -> ChaosReport {
    let tamix = &params.tamix;
    // `tamix.store`/`tamix.writeback_interval` carry through to both the
    // pre-crash and the recovered engine, so the whole scenario — storm,
    // crash, recovery, resume — can run on a file-backed pool with a
    // background flusher.
    let db = Arc::new(XtcDb::new(XtcConfig {
        protocol: tamix.protocol.clone(),
        isolation: tamix.isolation,
        lock_depth: tamix.lock_depth,
        lock_timeout: tamix.lock_timeout,
        victim_policy: tamix.victim_policy,
        lock_cache: tamix.lock_cache,
        store: tamix.store.clone(),
        wal: Some(WalConfig::default()),
        txn_deadline: tamix.txn_deadline,
        max_in_flight: tamix.max_in_flight,
        admission: tamix.admission,
        writeback_interval: tamix.writeback_interval,
        ..XtcConfig::default()
    }));
    // Bulk generation bypasses the log; the checkpoint makes the base
    // document recoverable.
    bib::generate_into(&db, &params.bib);
    db.checkpoint().expect("checkpoint clean database");

    xtc_failpoint::clear();
    xtc_failpoint::set_seed(tamix.seed);
    xtc_failpoint::configure(
        &params.kill_site,
        params.kill_probability,
        xtc_failpoint::FailAction::Error,
        params.kill_budget,
    );

    // Phase 1: marker writers + the CLUSTER1 storm, concurrently.
    let retry = tamix.retry.clone().unwrap_or_default();
    let marker_handles: Vec<_> = (0..params.workers)
        .map(|w| {
            let db = db.clone();
            let policy = RetryPolicy {
                seed: retry.seed.wrapping_add(w as u64 * 7919),
                ..retry.clone()
            };
            let count = params.markers_per_worker;
            let topics = params.bib.topics;
            std::thread::spawn(move || marker_writer(&db, &policy, w, count, topics))
        })
        .collect();
    let pre = run_cluster1_on(&db, tamix, &params.bib);
    let mut fates = Vec::new();
    for h in marker_handles {
        fates.extend(h.join().expect("marker writer panicked"));
    }

    let crashed_mid_run = {
        let wal = db.wal().expect("wal configured");
        wal.is_crashed() || db.store().stats().is_poisoned()
    };
    xtc_failpoint::clear();

    // Crash now if the armed fault never fired: the recovery path runs
    // in every scenario.
    let wal = db.wal().expect("wal configured").clone();
    wal.crash();
    drop(db);

    // Recovery, timed on wall clock and charged to the recovered
    // engine's virtual clock by `recover_from`.
    let recovery_started = Instant::now();
    let (recovered, report) = recover_from(
        &wal,
        XtcConfig {
            protocol: tamix.protocol.clone(),
            isolation: tamix.isolation,
            lock_depth: tamix.lock_depth,
            lock_timeout: tamix.lock_timeout,
            victim_policy: tamix.victim_policy,
            lock_cache: tamix.lock_cache,
            store: tamix.store.clone(),
            wal: Some(WalConfig::default()),
            txn_deadline: tamix.txn_deadline,
            max_in_flight: tamix.max_in_flight,
            admission: tamix.admission,
            writeback_interval: tamix.writeback_interval,
            ..XtcConfig::default()
        },
    )
    .expect("recovery must succeed");
    let recovery_wall = recovery_started.elapsed();
    let recovered = Arc::new(recovered);

    // Verify the durable contract against the fate ledger.
    let mut violations = Vec::new();
    let store = recovered.store();
    let mut acknowledged = 0;
    let mut in_doubt = 0;
    for (marker, fate) in &fates {
        let count = store.elements_named(marker).len();
        match fate {
            Fate::Committed => {
                acknowledged += 1;
                if count != 1 {
                    violations.push(format!(
                        "acknowledged commit {marker} found {count} times after recovery"
                    ));
                }
            }
            Fate::Absent => {
                if count != 0 {
                    violations.push(format!(
                        "cleanly-failed {marker} leaked into recovery ({count} copies)"
                    ));
                }
            }
            Fate::Unknown => {
                in_doubt += 1;
                if count > 1 {
                    violations.push(format!("in-doubt {marker} duplicated ({count} copies)"));
                }
            }
        }
    }
    for issue in check_document(&recovered, &params.bib) {
        violations.push(format!("post-recovery: {issue}"));
    }

    // Phase 2: resume the remaining workload on the recovered engine.
    let mut resume = tamix.clone();
    resume.duration = params.resume_duration;
    resume.seed = tamix.seed.wrapping_add(0x5EED);
    let post = run_cluster1_on(&recovered, &resume, &params.bib);
    if post.committed() == 0 {
        violations.push("resume phase committed nothing".to_string());
    }
    for issue in check_document(&recovered, &params.bib) {
        violations.push(format!("post-resume: {issue}"));
    }

    ChaosReport {
        protocol: tamix.protocol.clone(),
        kill_site: params.kill_site.clone(),
        crashed_mid_run,
        torn_tail: report.torn_tail,
        recovery_us: recovered.obs().vt().recovery_us,
        recovery_wall,
        scanned: report.scanned,
        pre,
        post,
        markers: fates.len(),
        acknowledged,
        in_doubt,
        violations,
    }
}
