//! # xtc-tamix — the TaMix framework for XML benchmarks
//!
//! Reproduction of §4 of *Contest of XML Lock Protocols* (VLDB 2006):
//! a benchmark framework stretching the lock manager's behaviour with
//! multi-user operation mixes over a scalable `bib` library document.
//!
//! * [`bib`] — the document generator of §4.3 (persons, authors, topics,
//!   books with chapters and lend histories),
//! * [`txns`] — the five transaction types of §4.2 (`TAqueryBook`,
//!   `TAchapter`, `TAdelBook`, `TAlendAndReturn`, `TArenameTopic`),
//! * [`driver`] — the TaMix coordinator: concurrently active transaction
//!   slots with the paper's think times (waitAfterCommit,
//!   waitAfterOperation, random initial wait), CLUSTER1 and CLUSTER2,
//! * [`metrics`] — the §4.1 performance metrics: committed/aborted
//!   transactions per type and lock depth, min/avg/max durations, and
//!   deadlock counts classified by cause,
//! * [`chaos`] — the crash–recover–resume harness: runs the mix under
//!   injected faults, crashes mid-run, recovers, verifies the durable
//!   contract, and resumes the remaining workload.

#![warn(missing_docs)]

pub mod bib;
pub mod chaos;
pub mod driver;
pub mod metrics;
pub mod multi;
pub mod txns;

pub use bib::BibConfig;
pub use chaos::{run_crash_recover_resume, ChaosParams, ChaosReport, Fate};
pub use driver::{
    run_cluster1, run_cluster1_on, run_cluster2, run_long_reader, Cluster2Report,
    LongReaderParams, LongReaderReport, TamixParams,
};
pub use metrics::{PoolReport, RetryTotals, RunReport, TxnOutcome, TypeStats};
pub use multi::{build_bib_catalog, doc_name, sample_kind, Zipf};
pub use txns::{Pacing, PacingMode, TxnKind};
