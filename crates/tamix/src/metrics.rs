//! The §4.1 performance metrics: "number of committed and aborted
//! transactions for a pre-specified lock depth and isolation level;
//! average, maximal, and minimal duration of a transaction of a given
//! type; number and type of deadlocks for a lock protocol."

use crate::txns::TxnKind;
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Duration;

/// Outcome of one transaction slot iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Committed having done its work.
    Committed,
    /// Committed trivially (target vanished under concurrent deletes).
    Empty,
    /// Aborted as a deadlock victim.
    AbortedDeadlock,
    /// Aborted for another reason (timeout, plan races, logical error).
    AbortedOther,
}

/// Aggregated statistics for one transaction type.
#[derive(Debug, Clone, Default, Serialize)]
pub struct TypeStats {
    /// Committed transactions (including trivial commits).
    pub committed: u64,
    /// Commits that found their target vanished.
    pub empty: u64,
    /// Deadlock-victim aborts.
    pub aborted_deadlock: u64,
    /// Other aborts.
    pub aborted_other: u64,
    /// Total duration of committed transactions (µs).
    total_us: u128,
    /// Minimum duration (µs) of a committed transaction.
    min_us: u128,
    /// Maximum duration (µs).
    max_us: u128,
}

impl TypeStats {
    /// Records one outcome.
    pub fn record(&mut self, outcome: TxnOutcome, duration: Duration) {
        match outcome {
            TxnOutcome::Committed | TxnOutcome::Empty => {
                if outcome == TxnOutcome::Empty {
                    self.empty += 1;
                }
                self.committed += 1;
                let us = duration.as_micros();
                self.total_us += us;
                self.max_us = self.max_us.max(us);
                self.min_us = if self.min_us == 0 {
                    us
                } else {
                    self.min_us.min(us)
                };
            }
            TxnOutcome::AbortedDeadlock => self.aborted_deadlock += 1,
            TxnOutcome::AbortedOther => self.aborted_other += 1,
        }
    }

    /// All aborts.
    pub fn aborted(&self) -> u64 {
        self.aborted_deadlock + self.aborted_other
    }

    /// Average committed-transaction duration.
    pub fn avg(&self) -> Duration {
        if self.committed == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros((self.total_us / self.committed as u128) as u64)
    }

    /// Minimum committed-transaction duration.
    pub fn min(&self) -> Duration {
        Duration::from_micros(self.min_us as u64)
    }

    /// Maximum committed-transaction duration.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_us as u64)
    }

    /// Merges another accumulator (per-thread → global).
    pub fn merge(&mut self, other: &TypeStats) {
        self.committed += other.committed;
        self.empty += other.empty;
        self.aborted_deadlock += other.aborted_deadlock;
        self.aborted_other += other.aborted_other;
        self.total_us += other.total_us;
        self.max_us = self.max_us.max(other.max_us);
        self.min_us = match (self.min_us, other.min_us) {
            (0, m) | (m, 0) => m,
            (a, b) => a.min(b),
        };
    }
}

/// Report of one benchmark run (one protocol, isolation level, depth).
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// Protocol name.
    pub protocol: String,
    /// Isolation level name.
    pub isolation: String,
    /// Lock depth used.
    pub lock_depth: u32,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-type statistics.
    pub per_type: BTreeMap<&'static str, TypeStats>,
    /// Deadlocks resolved (victim count).
    pub deadlocks: u64,
    /// Deadlocks classified as conversion-caused.
    pub conversion_deadlocks: u64,
    /// Lock requests served (lock-manager overhead).
    pub lock_requests: u64,
    /// Logical page reads during the run.
    pub page_reads: u64,
}

impl RunReport {
    /// Total committed transactions across types.
    pub fn committed(&self) -> u64 {
        self.per_type.values().map(|s| s.committed).sum()
    }

    /// Total aborted transactions across types.
    pub fn aborted(&self) -> u64 {
        self.per_type.values().map(|s| s.aborted()).sum()
    }

    /// Committed count for a single type.
    pub fn committed_of(&self, kind: TxnKind) -> u64 {
        self.per_type
            .get(kind.name())
            .map(|s| s.committed)
            .unwrap_or(0)
    }

    /// Throughput normalized to the paper's unit: committed transactions
    /// per 5-minute run (the runs here are shorter; see EXPERIMENTS.md).
    pub fn throughput_per_5min(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.committed() as f64 * 300.0 / self.elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate_and_merge() {
        let mut a = TypeStats::default();
        a.record(TxnOutcome::Committed, Duration::from_millis(10));
        a.record(TxnOutcome::Committed, Duration::from_millis(30));
        a.record(TxnOutcome::AbortedDeadlock, Duration::from_millis(5));
        assert_eq!(a.committed, 2);
        assert_eq!(a.aborted(), 1);
        assert_eq!(a.avg(), Duration::from_millis(20));
        assert_eq!(a.min(), Duration::from_millis(10));
        assert_eq!(a.max(), Duration::from_millis(30));

        let mut b = TypeStats::default();
        b.record(TxnOutcome::Empty, Duration::from_millis(2));
        b.record(TxnOutcome::AbortedOther, Duration::ZERO);
        b.merge(&a);
        assert_eq!(b.committed, 3);
        assert_eq!(b.empty, 1);
        assert_eq!(b.aborted_deadlock, 1);
        assert_eq!(b.aborted_other, 1);
        assert_eq!(b.min(), Duration::from_millis(2));
        assert_eq!(b.max(), Duration::from_millis(30));
    }
}
