//! The §4.1 performance metrics: "number of committed and aborted
//! transactions for a pre-specified lock depth and isolation level;
//! average, maximal, and minimal duration of a transaction of a given
//! type; number and type of deadlocks for a lock protocol."

use crate::txns::TxnKind;
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Duration;

/// Outcome of one transaction slot iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Committed having done its work.
    Committed,
    /// Committed trivially (target vanished under concurrent deletes).
    Empty,
    /// Aborted as a deadlock victim.
    AbortedDeadlock,
    /// Aborted because a lock wait hit the timeout safety valve. Kept
    /// apart from deadlocks: a timeout spike signals lock-table
    /// congestion, not cyclic conflict.
    AbortedTimeout,
    /// Aborted for another reason (plan races, logical error, injected
    /// fault).
    AbortedOther,
}

/// Aggregated statistics for one transaction type.
#[derive(Debug, Clone, Default, Serialize)]
pub struct TypeStats {
    /// Committed transactions (including trivial commits).
    pub committed: u64,
    /// Commits that found their target vanished.
    pub empty: u64,
    /// Deadlock-victim aborts.
    pub aborted_deadlock: u64,
    /// Lock-wait-timeout aborts.
    pub aborted_timeout: u64,
    /// Other aborts.
    pub aborted_other: u64,
    /// Total duration of committed transactions (µs).
    total_us: u128,
    /// Minimum duration (µs) of a committed transaction; `None` until
    /// the first commit (0 µs is a valid minimum, not a sentinel).
    min_us: Option<u128>,
    /// Maximum duration (µs).
    max_us: u128,
}

impl TypeStats {
    /// Records one outcome.
    pub fn record(&mut self, outcome: TxnOutcome, duration: Duration) {
        match outcome {
            TxnOutcome::Committed | TxnOutcome::Empty => {
                if outcome == TxnOutcome::Empty {
                    self.empty += 1;
                }
                self.committed += 1;
                let us = duration.as_micros();
                self.total_us += us;
                self.max_us = self.max_us.max(us);
                self.min_us = Some(match self.min_us {
                    Some(m) => m.min(us),
                    None => us,
                });
            }
            TxnOutcome::AbortedDeadlock => self.aborted_deadlock += 1,
            TxnOutcome::AbortedTimeout => self.aborted_timeout += 1,
            TxnOutcome::AbortedOther => self.aborted_other += 1,
        }
    }

    /// All aborts.
    pub fn aborted(&self) -> u64 {
        self.aborted_deadlock + self.aborted_timeout + self.aborted_other
    }

    /// Average committed-transaction duration.
    pub fn avg(&self) -> Duration {
        if self.committed == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros((self.total_us / self.committed as u128) as u64)
    }

    /// Minimum committed-transaction duration (zero before any commit).
    pub fn min(&self) -> Duration {
        Duration::from_micros(self.min_us.unwrap_or(0) as u64)
    }

    /// Maximum committed-transaction duration.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_us as u64)
    }

    /// Merges another accumulator (per-thread → global).
    pub fn merge(&mut self, other: &TypeStats) {
        self.committed += other.committed;
        self.empty += other.empty;
        self.aborted_deadlock += other.aborted_deadlock;
        self.aborted_timeout += other.aborted_timeout;
        self.aborted_other += other.aborted_other;
        self.total_us += other.total_us;
        self.max_us = self.max_us.max(other.max_us);
        self.min_us = match (self.min_us, other.min_us) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }
}

/// Aggregated retry-layer statistics of a run (all slots merged). Zero
/// everywhere when the run did not use a retry policy.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RetryTotals {
    /// `run_retrying` invocations.
    pub runs: u64,
    /// Transaction attempts across all invocations.
    pub attempts: u64,
    /// Deadlock-victim aborts absorbed by retry.
    pub deadlock_aborts: u64,
    /// Timeout aborts absorbed by retry.
    pub timeout_aborts: u64,
    /// Other retryable aborts absorbed by retry.
    pub other_retryable_aborts: u64,
    /// Total backoff sleep across all slots.
    pub backoff_total: Duration,
    /// Virtual microseconds the retry loops consumed (per-attempt
    /// charged transaction time plus backoff pauses).
    pub vt_elapsed_us: u64,
    /// Invocations that committed on attempt 2 or later.
    pub committed_after_retry: u64,
}

impl RetryTotals {
    /// Folds one `run_retrying` result into the totals.
    pub fn record(&mut self, stats: &xtc_core::RetryStats) {
        self.runs += 1;
        self.attempts += stats.attempts as u64;
        self.deadlock_aborts += stats.deadlock_aborts as u64;
        self.timeout_aborts += stats.timeout_aborts as u64;
        self.other_retryable_aborts += stats.other_retryable_aborts as u64;
        self.backoff_total += stats.backoff_total;
        self.vt_elapsed_us = self.vt_elapsed_us.saturating_add(stats.vt_elapsed_us);
        self.committed_after_retry += stats.committed_after_retry as u64;
    }

    /// Merges another accumulator (per-thread → global).
    pub fn merge(&mut self, other: &RetryTotals) {
        self.runs += other.runs;
        self.attempts += other.attempts;
        self.deadlock_aborts += other.deadlock_aborts;
        self.timeout_aborts += other.timeout_aborts;
        self.other_retryable_aborts += other.other_retryable_aborts;
        self.backoff_total += other.backoff_total;
        self.vt_elapsed_us = self.vt_elapsed_us.saturating_add(other.vt_elapsed_us);
        self.committed_after_retry += other.committed_after_retry;
    }
}

/// Buffer-pool and index-filter activity over one run: the delta of the
/// engine's aggregated [`xtc_node::PoolStats`] between run start and run
/// end (counters only — the gauges `dirty`/`resident`/`live` are
/// point-in-time and excluded).
#[derive(Debug, Clone, Default, Serialize)]
pub struct PoolReport {
    /// Page accesses served from resident frames.
    pub hits: u64,
    /// Page accesses that faulted the page in.
    pub misses: u64,
    /// Frames evicted under the residency budget.
    pub evictions: u64,
    /// Evictions that found no clean, unpinned, WAL-safe victim.
    pub evict_blocked: u64,
    /// Dirty pages written back (background writeback + checkpoints).
    pub flushes: u64,
    /// Dirty victims synchronously written back on the eviction path.
    pub forced_writebacks: u64,
    /// Fault-ins whose access history the LRU-2 ghost list remembered.
    pub ghost_hits: u64,
    /// Index probes that consulted a negative-lookup filter.
    pub filter_probes: u64,
    /// Index probes the filter answered "absent" (descent skipped).
    pub filter_negatives: u64,
}

impl PoolReport {
    /// The counter delta between two pool snapshots.
    pub fn delta(before: &xtc_node::PoolStats, after: &xtc_node::PoolStats) -> PoolReport {
        PoolReport {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            evictions: after.evictions - before.evictions,
            evict_blocked: after.evict_blocked - before.evict_blocked,
            flushes: after.flushes - before.flushes,
            forced_writebacks: after.forced_writebacks - before.forced_writebacks,
            ghost_hits: after.ghost_hits - before.ghost_hits,
            filter_probes: after.filter_probes - before.filter_probes,
            filter_negatives: after.filter_negatives - before.filter_negatives,
        }
    }

    /// Fraction of page accesses served without a fault-in.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// Report of one benchmark run (one protocol, isolation level, depth).
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// Protocol name.
    pub protocol: String,
    /// Isolation level name.
    pub isolation: String,
    /// Lock depth used.
    pub lock_depth: u32,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-type statistics.
    pub per_type: BTreeMap<&'static str, TypeStats>,
    /// Deadlocks resolved (victim count).
    pub deadlocks: u64,
    /// Deadlocks classified as conversion-caused.
    pub conversion_deadlocks: u64,
    /// Lock requests served (lock-manager overhead). Counts every
    /// meta-level request, whether it hit the per-transaction lock cache
    /// or reached the shared table — directly comparable to the paper's
    /// lock-request numbers regardless of the cache setting.
    pub lock_requests: u64,
    /// Requests that reached the shared lock table (cache misses).
    pub table_requests: u64,
    /// Requests served from the per-transaction lock cache.
    pub cache_hits: u64,
    /// Logical page reads during the run.
    pub page_reads: u64,
    /// Buffer-pool and index-filter activity (hits, misses, evictions,
    /// writebacks, filter probes) as a delta over the run.
    pub pool: PoolReport,
    /// Lock escalations (transactions switching to coarser locks).
    pub escalations: u64,
    /// Retry-layer totals (zero without a retry policy).
    pub retries: RetryTotals,
    /// The per-transaction virtual-time deadline budget the run was
    /// configured with (µs), `None` when deadlines were off — so a
    /// report's timeout-abort counts are interpretable on their own.
    pub txn_deadline_us: Option<u64>,
    /// Virtual-time totals accumulated during the run (simulated page-read
    /// latency, think time, measured lock/WAL waits). Deterministic
    /// components make figure-shape assertions independent of wall clock.
    pub vt: xtc_obs::VirtualTimes,
}

impl RunReport {
    /// Total committed transactions across types.
    pub fn committed(&self) -> u64 {
        self.per_type.values().map(|s| s.committed).sum()
    }

    /// Total aborted transactions across types.
    pub fn aborted(&self) -> u64 {
        self.per_type.values().map(|s| s.aborted()).sum()
    }

    /// Total timeout aborts (lock-wait timeouts plus exhausted
    /// transaction deadlines) across types.
    pub fn timeout_aborts(&self) -> u64 {
        self.per_type.values().map(|s| s.aborted_timeout).sum()
    }

    /// Committed count for a single type.
    pub fn committed_of(&self, kind: TxnKind) -> u64 {
        self.per_type
            .get(kind.name())
            .map(|s| s.committed)
            .unwrap_or(0)
    }

    /// Throughput normalized to the paper's unit: committed transactions
    /// per 5-minute run (the runs here are shorter; see EXPERIMENTS.md).
    pub fn throughput_per_5min(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.committed() as f64 * 300.0 / self.elapsed.as_secs_f64()
    }

    /// Fraction of lock requests served from the per-transaction cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.lock_requests == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.lock_requests as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate_and_merge() {
        let mut a = TypeStats::default();
        a.record(TxnOutcome::Committed, Duration::from_millis(10));
        a.record(TxnOutcome::Committed, Duration::from_millis(30));
        a.record(TxnOutcome::AbortedDeadlock, Duration::from_millis(5));
        assert_eq!(a.committed, 2);
        assert_eq!(a.aborted(), 1);
        assert_eq!(a.avg(), Duration::from_millis(20));
        assert_eq!(a.min(), Duration::from_millis(10));
        assert_eq!(a.max(), Duration::from_millis(30));

        let mut b = TypeStats::default();
        b.record(TxnOutcome::Empty, Duration::from_millis(2));
        b.record(TxnOutcome::AbortedOther, Duration::ZERO);
        b.record(TxnOutcome::AbortedTimeout, Duration::ZERO);
        b.merge(&a);
        assert_eq!(b.committed, 3);
        assert_eq!(b.empty, 1);
        assert_eq!(b.aborted_deadlock, 1);
        assert_eq!(b.aborted_timeout, 1);
        assert_eq!(b.aborted_other, 1);
        assert_eq!(b.aborted(), 3);
        assert_eq!(b.min(), Duration::from_millis(2));
        assert_eq!(b.max(), Duration::from_millis(30));
    }

    #[test]
    fn zero_duration_commit_is_a_valid_minimum() {
        // A sub-microsecond commit truncates to 0 µs; the old code used
        // 0 as "unset" and would overwrite it with a later, longer run.
        let mut s = TypeStats::default();
        s.record(TxnOutcome::Committed, Duration::ZERO);
        s.record(TxnOutcome::Committed, Duration::from_millis(10));
        assert_eq!(s.min(), Duration::ZERO);

        // Merging preserves the zero minimum in either direction.
        let mut empty = TypeStats::default();
        empty.merge(&s);
        assert_eq!(empty.min(), Duration::ZERO);
        let mut slow = TypeStats::default();
        slow.record(TxnOutcome::Committed, Duration::from_millis(5));
        slow.merge(&s);
        assert_eq!(slow.min(), Duration::ZERO);
    }

    #[test]
    fn retry_totals_record_and_merge() {
        let mut a = RetryTotals::default();
        a.record(&xtc_core::RetryStats {
            attempts: 3,
            deadlock_aborts: 2,
            timeout_aborts: 0,
            other_retryable_aborts: 0,
            backoff_total: Duration::from_millis(4),
            vt_elapsed_us: 1_500,
            committed_after_retry: true,
        });
        let mut b = RetryTotals::default();
        b.record(&xtc_core::RetryStats {
            attempts: 1,
            ..Default::default()
        });
        b.merge(&a);
        assert_eq!(b.runs, 2);
        assert_eq!(b.attempts, 4);
        assert_eq!(b.deadlock_aborts, 2);
        assert_eq!(b.committed_after_retry, 1);
        assert_eq!(b.backoff_total, Duration::from_millis(4));
        assert_eq!(b.vt_elapsed_us, 1_500);
    }
}
