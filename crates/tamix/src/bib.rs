//! The scalable `bib` library document of §4.3 / Figure 5.
//!
//! "All transactions … operate on a bib document which itself can be
//! configured to the size desired; it is highly scalable and may range
//! from a few Kbytes to several hundred Mbytes." The paper's runs used:
//! 1000 person and 100 author elements, 2000 book elements equally
//! distributed across 100 topics (20 per topic), 5–10 chapters per book,
//! and a history of 9 or 10 lend elements.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xtc_core::XtcDb;
use xtc_node::{DocStore, InsertPos};
use xtc_splid::SplId;

/// Size parameters of the generated document.
#[derive(Debug, Clone)]
pub struct BibConfig {
    /// `person` elements under `persons` (paper: 1000).
    pub persons: usize,
    /// `author` elements drawn from for books (paper: 100).
    pub authors: usize,
    /// `topic` elements under `topics` (paper: 100).
    pub topics: usize,
    /// `book` elements, distributed evenly across topics (paper: 2000).
    pub books: usize,
    /// Chapter range per book (paper: 5–10).
    pub chapters: (usize, usize),
    /// Lend range per history (paper: 9–10, equal probability).
    pub lends: (usize, usize),
    /// Generator seed.
    pub seed: u64,
}

impl BibConfig {
    /// The paper's full-size document.
    pub fn paper() -> Self {
        BibConfig {
            persons: 1000,
            authors: 100,
            topics: 100,
            books: 2000,
            chapters: (5, 10),
            lends: (9, 10),
            seed: 42,
        }
    }

    /// A scaled-down document for fast experiment sweeps (the default for
    /// the figure binaries; see EXPERIMENTS.md).
    pub fn scaled() -> Self {
        BibConfig {
            persons: 100,
            authors: 20,
            topics: 20,
            books: 200,
            chapters: (3, 5),
            lends: (4, 5),
            seed: 42,
        }
    }

    /// A tiny document for unit tests.
    pub fn tiny() -> Self {
        BibConfig {
            persons: 5,
            authors: 3,
            topics: 2,
            books: 6,
            chapters: (2, 3),
            lends: (2, 3),
            seed: 42,
        }
    }

    /// Books per topic (books are distributed evenly).
    pub fn books_per_topic(&self) -> usize {
        self.books / self.topics.max(1)
    }
}

impl Default for BibConfig {
    fn default() -> Self {
        BibConfig::scaled()
    }
}

/// Generates the bib document into an (empty) store. Returns the root.
///
/// IDs follow a fixed scheme the transaction types rely on: persons
/// `p0..`, topics `t0..`, books `b0..`.
pub fn generate(store: &DocStore, cfg: &BibConfig) -> SplId {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let root = store.create_root("bib").expect("empty store");

    // persons
    let persons = store
        .insert_element(&root, InsertPos::LastChild, "persons")
        .unwrap();
    for i in 0..cfg.persons {
        let p = store
            .insert_element(&persons, InsertPos::LastChild, "person")
            .unwrap();
        store.set_attribute(&p, "id", &format!("p{i}")).unwrap();
        let name = store.insert_element(&p, InsertPos::LastChild, "name").unwrap();
        let first = store
            .insert_element(&name, InsertPos::LastChild, "first")
            .unwrap();
        store
            .insert_text(&first, InsertPos::LastChild, FIRST_NAMES[i % FIRST_NAMES.len()])
            .unwrap();
        let last = store
            .insert_element(&name, InsertPos::LastChild, "last")
            .unwrap();
        store
            .insert_text(&last, InsertPos::LastChild, LAST_NAMES[i % LAST_NAMES.len()])
            .unwrap();
        let addr = store.insert_element(&p, InsertPos::LastChild, "addr").unwrap();
        store
            .insert_text(&addr, InsertPos::LastChild, "67663 Kaiserslautern")
            .unwrap();
        let phone = store
            .insert_element(&p, InsertPos::LastChild, "phone")
            .unwrap();
        store
            .insert_text(&phone, InsertPos::LastChild, &format!("+49-631-{:06}", i))
            .unwrap();
    }

    // topics with books
    let topics = store
        .insert_element(&root, InsertPos::LastChild, "topics")
        .unwrap();
    let per_topic = cfg.books_per_topic();
    let mut book_no = 0usize;
    for t in 0..cfg.topics {
        let topic = store
            .insert_element(&topics, InsertPos::LastChild, "topic")
            .unwrap();
        store.set_attribute(&topic, "id", &format!("t{t}")).unwrap();
        let in_topic = if t + 1 == cfg.topics {
            cfg.books - book_no // remainder goes to the last topic
        } else {
            per_topic
        };
        for _ in 0..in_topic {
            generate_book(store, &topic, book_no, cfg, &mut rng);
            book_no += 1;
        }
    }
    root
}

fn generate_book(store: &DocStore, topic: &SplId, no: usize, cfg: &BibConfig, rng: &mut SmallRng) {
    let book = store
        .insert_element(topic, InsertPos::LastChild, "book")
        .unwrap();
    store.set_attribute(&book, "id", &format!("b{no}")).unwrap();
    store
        .set_attribute(&book, "year", &format!("{}", 1990 + (no % 17)))
        .unwrap();

    let title = store
        .insert_element(&book, InsertPos::LastChild, "title")
        .unwrap();
    store
        .insert_text(
            &title,
            InsertPos::LastChild,
            &format!("{} Vol. {}", TITLES[no % TITLES.len()], no),
        )
        .unwrap();

    let author = store
        .insert_element(&book, InsertPos::LastChild, "author")
        .unwrap();
    store
        .insert_text(
            &author,
            InsertPos::LastChild,
            LAST_NAMES[no % cfg.authors.max(1) % LAST_NAMES.len()],
        )
        .unwrap();

    let price = store
        .insert_element(&book, InsertPos::LastChild, "price")
        .unwrap();
    store
        .insert_text(&price, InsertPos::LastChild, &format!("{}.95", 9 + no % 90))
        .unwrap();

    // chapters
    let chapters = store
        .insert_element(&book, InsertPos::LastChild, "chapters")
        .unwrap();
    let n_chapters = rng.random_range(cfg.chapters.0..=cfg.chapters.1);
    for c in 0..n_chapters {
        let chapter = store
            .insert_element(&chapters, InsertPos::LastChild, "chapter")
            .unwrap();
        let ctitle = store
            .insert_element(&chapter, InsertPos::LastChild, "title")
            .unwrap();
        store
            .insert_text(&ctitle, InsertPos::LastChild, &format!("Chapter {}", c + 1))
            .unwrap();
        let summary = store
            .insert_element(&chapter, InsertPos::LastChild, "summary")
            .unwrap();
        store
            .insert_text(
                &summary,
                InsertPos::LastChild,
                "A summary of locks, trees, and the transactions between them.",
            )
            .unwrap();
    }

    // history with lends
    let history = store
        .insert_element(&book, InsertPos::LastChild, "history")
        .unwrap();
    let n_lends = rng.random_range(cfg.lends.0..=cfg.lends.1);
    for l in 0..n_lends {
        let lend = store
            .insert_element(&history, InsertPos::LastChild, "lend")
            .unwrap();
        store
            .set_attribute(&lend, "person", &format!("p{}", (no + l) % cfg.persons.max(1)))
            .unwrap();
        store
            .set_attribute(&lend, "return", &format!("2005-{:02}-{:02}", 1 + l % 12, 1 + l % 28))
            .unwrap();
    }
}

/// Generates the bib document into a database's store (unlocked bulk
/// load).
pub fn generate_into(db: &XtcDb, cfg: &BibConfig) -> SplId {
    generate(db.store(), cfg)
}

const FIRST_NAMES: [&str; 8] = [
    "Theo", "Michael", "Konstantin", "Jim", "Andreas", "Erhard", "Stefan", "Guido",
];
const LAST_NAMES: [&str; 8] = [
    "Haerder", "Haustein", "Luttenberger", "Gray", "Reuter", "Rahm", "Dessloch", "Moerkotte",
];
const TITLES: [&str; 6] = [
    "Transaction Processing",
    "XML Data Management",
    "Concurrency Control",
    "Database Implementation",
    "Tree Locking",
    "Storage Structures",
];

#[cfg(test)]
mod tests {
    use super::*;
    use xtc_node::DocStoreConfig;

    #[test]
    fn generated_structure_matches_spec() {
        let store = DocStore::new(DocStoreConfig::default());
        let cfg = BibConfig::tiny();
        let root = generate(&store, &cfg);
        assert_eq!(store.name_of(&root).as_deref(), Some("bib"));
        assert_eq!(store.elements_named("person").len(), cfg.persons);
        assert_eq!(store.elements_named("topic").len(), cfg.topics);
        assert_eq!(store.elements_named("book").len(), cfg.books);
        // Every book is reachable by id and owns title/author/price/
        // chapters/history.
        for b in 0..cfg.books {
            let book = store.element_by_id(&format!("b{b}")).unwrap();
            let kids: Vec<String> = store
                .element_children(&book)
                .iter()
                .map(|c| store.name_of(c).unwrap())
                .collect();
            assert_eq!(kids, ["title", "author", "price", "chapters", "history"]);
            let history = store.element_children(&book)[4].clone();
            let lends = store.element_children(&history).len();
            assert!((cfg.lends.0..=cfg.lends.1).contains(&lends));
            let chapters = store.element_children(&store.element_children(&book)[3].clone());
            assert!((cfg.chapters.0..=cfg.chapters.1).contains(&chapters.len()));
        }
        // Topics resolvable by id.
        for t in 0..cfg.topics {
            assert!(store.element_by_id(&format!("t{t}")).is_some());
        }
    }

    #[test]
    fn book_distribution_is_even_with_remainder_in_last_topic() {
        let store = DocStore::new(DocStoreConfig::default());
        let cfg = BibConfig {
            topics: 3,
            books: 10,
            ..BibConfig::tiny()
        };
        generate(&store, &cfg);
        let counts: Vec<usize> = (0..3)
            .map(|t| {
                let topic = store.element_by_id(&format!("t{t}")).unwrap();
                store.element_children(&topic).len()
            })
            .collect();
        assert_eq!(counts, [3, 3, 4]);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DocStore::new(DocStoreConfig::default());
        let b = DocStore::new(DocStoreConfig::default());
        generate(&a, &BibConfig::tiny());
        generate(&b, &BibConfig::tiny());
        assert_eq!(a.node_count(), b.node_count());
    }
}
