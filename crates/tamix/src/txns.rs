//! The five TaMix transaction types of §4.2.
//!
//! "The role of the reader transactions (TAqueryBook) is to provide a
//! continuous system load under which the remaining IUD transactions have
//! to compete for data sources. They provoke together with the readers
//! wait relationships and deadlocks, which, in turn, determine the
//! transaction throughput."

use crate::bib::BibConfig;
use rand::rngs::SmallRng;
use rand::Rng;
use std::time::Duration;
use xtc_core::{InsertPos, NodeData, SplId, Transaction, XtcDb, XtcError};

/// The five transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TxnKind {
    /// Select a book by random ID, read its whole subtree navigationally.
    QueryBook,
    /// Same read profile, then update a chapter text node.
    Chapter,
    /// Read profile on a random topic, then delete a book subtree.
    DelBook,
    /// Locate a book, navigate to its history, lend or return it.
    LendAndReturn,
    /// Locate a topic by ID and rename it.
    RenameTopic,
}

impl TxnKind {
    /// Paper name ("TAqueryBook" …).
    pub fn name(self) -> &'static str {
        match self {
            TxnKind::QueryBook => "TAqueryBook",
            TxnKind::Chapter => "TAchapter",
            TxnKind::DelBook => "TAdelBook",
            TxnKind::LendAndReturn => "TAlendAndReturn",
            TxnKind::RenameTopic => "TArenameTopic",
        }
    }

    /// Whether the type performs updates (everything but `QueryBook`).
    pub fn is_writer(self) -> bool {
        !matches!(self, TxnKind::QueryBook)
    }

    /// All types, in the paper's presentation order.
    pub const ALL: [TxnKind; 5] = [
        TxnKind::QueryBook,
        TxnKind::Chapter,
        TxnKind::DelBook,
        TxnKind::LendAndReturn,
        TxnKind::RenameTopic,
    ];
}

/// How think-time pauses (waitAfterOperation, waitAfterCommit, initial
/// stagger, checkpointer naps) are realized. The pauses survived the
/// virtual-time migration as wall-clock sleeps; virtual pacing charges
/// them to the simulated clock only, so runs finish at CPU speed while
/// the virtual-time totals still reflect the paper's pacing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PacingMode {
    /// Charge pauses to the virtual clock only — no wall-clock sleep.
    #[default]
    Virtual,
    /// Charge the virtual clock *and* sleep the wall clock (the paper's
    /// original client behavior; wall-clock durations stay meaningful).
    Wall,
}

/// Per-operation think time inside a transaction (the paper's
/// waitAfterOperation).
#[derive(Debug, Clone, Copy, Default)]
pub struct Pacing {
    /// Think time after each DOM operation.
    pub wait_after_operation: Duration,
    /// Wall sleep vs. virtual-clock-only pacing.
    pub mode: PacingMode,
}

impl Pacing {
    /// Charges the configured think time to the transaction's virtual
    /// clock (the charge is the configured pause, not a measured sleep,
    /// so simulated-time totals are deterministic) and — in
    /// [`PacingMode::Wall`] only — sleeps it.
    fn think(&self, txn: &Transaction<'_>) {
        if !self.wait_after_operation.is_zero() {
            txn.obs().charge(
                xtc_obs::CostKind::Think,
                self.wait_after_operation.as_micros() as u64,
            );
            match self.mode {
                PacingMode::Wall => std::thread::sleep(self.wait_after_operation),
                PacingMode::Virtual => std::thread::yield_now(),
            }
        }
    }
}

/// Runs one transaction of the given kind against the database. Returns
/// `Ok(true)` on commit, `Ok(false)` when the target vanished (trivial
/// commit), `Err` on abort.
pub fn run_txn(
    db: &XtcDb,
    kind: TxnKind,
    cfg: &BibConfig,
    rng: &mut SmallRng,
    pacing: Pacing,
) -> Result<bool, XtcError> {
    // Through the admission gate: with `max_in_flight` configured, a
    // slot at capacity queues or is rejected here (counted as an abort).
    let txn = db.try_begin()?;
    match run_txn_body(&txn, kind, cfg, rng, pacing) {
        Ok(did_work) => {
            txn.commit()?;
            Ok(did_work)
        }
        Err(e) => {
            txn.abort();
            Err(e)
        }
    }
}

/// Runs the body of one transaction of the given kind inside an
/// already-begun transaction; commit/abort is the caller's job. This is
/// the restartable unit [`XtcDb::run_retrying`] re-executes — each retry
/// sees a fresh transaction and a fresh random target draw.
pub fn run_txn_body(
    txn: &Transaction<'_>,
    kind: TxnKind,
    cfg: &BibConfig,
    rng: &mut SmallRng,
    pacing: Pacing,
) -> Result<bool, XtcError> {
    match kind {
        TxnKind::QueryBook => ta_query_book(txn, cfg, rng, pacing),
        TxnKind::Chapter => ta_chapter(txn, cfg, rng, pacing),
        TxnKind::DelBook => ta_del_book(txn, cfg, rng, pacing),
        TxnKind::LendAndReturn => ta_lend_and_return(txn, cfg, rng, pacing),
        TxnKind::RenameTopic => ta_rename_topic(txn, cfg, rng, pacing),
    }
}

/// Navigational depth-first read of a subtree: `getFirstChild` /
/// `getNextSibling` steps with node reads, exactly the DOM access model
/// the protocols must isolate.
fn navigational_read(
    txn: &Transaction<'_>,
    root: &SplId,
    pacing: Pacing,
) -> Result<usize, XtcError> {
    let mut visited = 0usize;
    let mut stack = vec![root.clone()];
    // Iterative DFS using only navigation operations.
    while let Some(n) = stack.pop() {
        let data = txn.node(&n)?;
        visited += 1;
        pacing.think(txn);
        if matches!(
            data,
            Some(NodeData::Element { .. }) | Some(NodeData::AttributeRoot)
        ) {
            // Children right-to-left so the leftmost is visited first.
            let mut kids = Vec::new();
            let mut c = txn.first_child(&n)?;
            while let Some(cur) = c {
                c = txn.next_sibling(&cur)?;
                kids.push(cur);
                pacing.think(txn);
            }
            stack.extend(kids.into_iter().rev());
        }
    }
    Ok(visited)
}

/// TAqueryBook: "selects a book element by random ID and provides details
/// of the book. It uses a direct jump via an ID attribute into the tree
/// (using an index) and traverses the subtree by navigational read
/// operations."
fn ta_query_book(
    txn: &Transaction<'_>,
    cfg: &BibConfig,
    rng: &mut SmallRng,
    pacing: Pacing,
) -> Result<bool, XtcError> {
    let id = format!("b{}", rng.random_range(0..cfg.books));
    let Some(book) = txn.element_by_id(&id)? else {
        return Ok(false); // concurrently deleted
    };
    pacing.think(txn);
    let _ = txn.attributes(&book)?;
    navigational_read(txn, &book, pacing)?;
    Ok(true)
}

/// TAchapter: "same operational read profile followed by an update of a
/// text node."
fn ta_chapter(
    txn: &Transaction<'_>,
    cfg: &BibConfig,
    rng: &mut SmallRng,
    pacing: Pacing,
) -> Result<bool, XtcError> {
    let id = format!("b{}", rng.random_range(0..cfg.books));
    let Some(book) = txn.element_by_id(&id)? else {
        return Ok(false);
    };
    pacing.think(txn);
    navigational_read(txn, &book, pacing)?;
    // Find a chapter summary text node and update it.
    let kids = txn.element_children(&book)?;
    let Some(chapters) = kids
        .iter()
        .find(|k| txn.name(k).ok().flatten().as_deref() == Some("chapters"))
        .cloned()
    else {
        return Ok(false);
    };
    let chapter_list = txn.element_children(&chapters)?;
    if chapter_list.is_empty() {
        return Ok(false);
    }
    let chapter = &chapter_list[rng.random_range(0..chapter_list.len())];
    let summary = txn.element_children(chapter)?;
    let Some(summary) = summary.last() else {
        return Ok(false);
    };
    let Some(text) = txn.first_child(summary)? else {
        return Ok(false);
    };
    pacing.think(txn);
    txn.update_text(&text, "An updated summary, rewritten under locks.")?;
    Ok(true)
}

/// TAdelBook: "same operational read profile, but on a random topic
/// element followed by a deletion of a book subtree."
fn ta_del_book(
    txn: &Transaction<'_>,
    cfg: &BibConfig,
    rng: &mut SmallRng,
    pacing: Pacing,
) -> Result<bool, XtcError> {
    let id = format!("t{}", rng.random_range(0..cfg.topics));
    let Some(topic) = txn.element_by_id(&id)? else {
        return Ok(false);
    };
    pacing.think(txn);
    let books = txn.element_children(&topic)?;
    if books.is_empty() {
        return Ok(false);
    }
    let book = books[rng.random_range(0..books.len())].clone();
    navigational_read(txn, &book, pacing)?;
    pacing.think(txn);
    txn.delete_subtree(&book)?;
    Ok(true)
}

/// TAlendAndReturn: "direct location of a randomly chosen book element
/// followed by complex navigational steps with updates, deletions, and
/// insertions of elements." This is the Figure 3b scenario: subtree
/// read (update intent) on the history, then a conversion to exclusive
/// when the lend decision is made.
fn ta_lend_and_return(
    txn: &Transaction<'_>,
    cfg: &BibConfig,
    rng: &mut SmallRng,
    pacing: Pacing,
) -> Result<bool, XtcError> {
    let id = format!("b{}", rng.random_range(0..cfg.books));
    let Some(book) = txn.element_by_id(&id)? else {
        return Ok(false);
    };
    pacing.think(txn);
    // Navigate to the last child: the history element.
    let Some(history) = txn.last_child(&book)? else {
        return Ok(false);
    };
    if txn.name(&history)?.as_deref() != Some("history") {
        return Ok(false); // concurrent structural change
    }
    // Read the history with update intent (SU → SX conversion path).
    let _ = txn.subtree_for_update(&history)?;
    pacing.think(txn);
    if rng.random_bool(0.5) {
        // Lend: attach a new lend element with person and return.
        let lend = txn.insert_element(&history, InsertPos::LastChild, "lend")?;
        pacing.think(txn);
        txn.set_attribute(&lend, "person", &format!("p{}", rng.random_range(0..cfg.persons)))?;
        txn.set_attribute(&lend, "return", "2006-09-15")?;
    } else {
        // Return: drop the oldest lend entry, if any.
        let lends = txn.element_children(&history)?;
        if let Some(first) = lends.first() {
            pacing.think(txn);
            txn.delete_subtree(first)?;
        }
    }
    Ok(true)
}

/// TArenameTopic: "locates a topic element by a random ID and renames
/// it." The taDOM3+ NX showcase — and the MGL*/Node2PLa stress case.
fn ta_rename_topic(
    txn: &Transaction<'_>,
    cfg: &BibConfig,
    rng: &mut SmallRng,
    pacing: Pacing,
) -> Result<bool, XtcError> {
    let id = format!("t{}", rng.random_range(0..cfg.topics));
    let Some(topic) = txn.element_by_id(&id)? else {
        return Ok(false);
    };
    pacing.think(txn);
    let new_name = if rng.random_bool(0.5) { "topic" } else { "subject" };
    txn.rename(&topic, new_name)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bib;
    use rand::SeedableRng;
    use std::time::Duration;
    use xtc_core::{IsolationLevel, XtcConfig};

    fn db(protocol: &str) -> (XtcDb, BibConfig) {
        let cfg = BibConfig::tiny();
        let db = XtcDb::new(XtcConfig {
            protocol: protocol.into(),
            isolation: IsolationLevel::Repeatable,
            lock_depth: 4,
            lock_timeout: Duration::from_secs(5),
            ..XtcConfig::default()
        });
        bib::generate_into(&db, &cfg);
        (db, cfg)
    }

    #[test]
    fn every_kind_commits_single_user_under_every_protocol() {
        let pacing = Pacing::default();
        for proto in xtc_protocols::EXTENDED_PROTOCOLS {
            let (db, cfg) = db(proto);
            let mut rng = SmallRng::seed_from_u64(7);
            for kind in TxnKind::ALL {
                let before = db.store().node_count();
                let r = run_txn(&db, kind, &cfg, &mut rng, pacing);
                assert!(r.is_ok(), "{proto}/{}: {r:?}", kind.name());
                if kind == TxnKind::DelBook && r == Ok(true) {
                    assert!(db.store().node_count() < before, "{proto}: delete happened");
                }
                assert_eq!(db.lock_table().granted_count(), 0, "{proto}: lock leak");
            }
        }
    }

    #[test]
    fn lend_and_return_changes_history() {
        let (db, cfg) = db("taDOM3+");
        let mut rng = SmallRng::seed_from_u64(3);
        let pacing = Pacing::default();
        for _ in 0..10 {
            run_txn(&db, TxnKind::LendAndReturn, &cfg, &mut rng, pacing).unwrap();
        }
        // Histories still structurally sound.
        for b in 0..cfg.books {
            let book = db.store().element_by_id(&format!("b{b}")).unwrap();
            let kids = db.store().element_children(&book);
            let history = kids.last().unwrap();
            assert_eq!(db.store().name_of(history).as_deref(), Some("history"));
        }
    }

    #[test]
    fn rename_topic_flips_names() {
        let (db, cfg) = db("taDOM3+");
        let mut rng = SmallRng::seed_from_u64(5);
        let pacing = Pacing::default();
        for _ in 0..8 {
            run_txn(&db, TxnKind::RenameTopic, &cfg, &mut rng, pacing).unwrap();
        }
        let topics = db.store().elements_named("topic").len()
            + db.store().elements_named("subject").len();
        assert_eq!(topics, cfg.topics);
    }
}
