//! Multi-document TaMix: the workload side of the catalog server.
//!
//! The single-document clusters of §4 stress one lock table; a server
//! hosts many documents whose *popularity is skewed* — most sessions
//! pile onto a few hot documents while the long tail idles. This module
//! provides the pieces the server benchmark composes: a deterministic
//! [`Zipf`] sampler over document indices, a catalog builder that
//! generates one bib document per slot, and the CLUSTER1 transaction
//! mix as a weighted per-request draw ([`sample_kind`]) instead of
//! dedicated per-type client slots.

use crate::bib::{self, BibConfig};
use crate::txns::TxnKind;
use rand::rngs::SmallRng;
use rand::Rng;
use xtc_core::{Catalog, CatalogConfig, DocSpec, XtcError};

/// Deterministic Zipf sampler over `0..n`: index `i` is drawn with
/// probability proportional to `1 / (i + 1)^s`. `s = 0` degenerates to
/// uniform; `s = 1` is the classic web-popularity curve (the default of
/// the server benchmark); larger `s` concentrates harder on index 0.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative distribution over `0..n`, normalized to end at 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `0..n` with exponent `s` (`n` is clamped to ≥ 1;
    /// negative `s` would *anti*-rank and is clamped to 0).
    pub fn new(n: usize, s: f64) -> Self {
        let n = n.max(1);
        let s = s.max(0.0);
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += ((i + 1) as f64).powf(-s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` for the degenerate single-rank sampler.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.random();
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }

    /// Probability of rank `i` (diagnostics for benchmark reports).
    pub fn probability(&self, i: usize) -> f64 {
        let lo = if i == 0 { 0.0 } else { self.cdf[i - 1] };
        self.cdf.get(i).map(|c| c - lo).unwrap_or(0.0)
    }
}

/// Stable name of document slot `i` (`doc00`, `doc01`, …): the routing
/// key sessions pass to the server's `open` command.
pub fn doc_name(i: usize) -> String {
    format!("doc{i:02}")
}

/// Builds a catalog of `docs` independent bib documents named by
/// [`doc_name`], each generated from `bib_cfg` (bulk load, bypassing
/// locks and gate) and checkpointed when the catalog's defaults carry a
/// WAL.
pub fn build_bib_catalog(
    config: CatalogConfig,
    docs: usize,
    bib_cfg: &BibConfig,
) -> Result<Catalog, XtcError> {
    let catalog = Catalog::new(config);
    for i in 0..docs {
        let db = catalog.create_doc(DocSpec::named(doc_name(i)))?;
        bib::generate_into(&db, bib_cfg);
        db.checkpoint()?;
    }
    Ok(catalog)
}

/// Draws a transaction type with the CLUSTER1 slot weights (9 query, 5
/// chapter, 2 rename, 8 lend — `TAdelBook` stays out of the steady-state
/// mix, as in the paper's clusters, so documents don't shrink away over
/// a long run).
pub fn sample_kind(rng: &mut SmallRng) -> TxnKind {
    const WEIGHTED: [(TxnKind, u32); 4] = [
        (TxnKind::QueryBook, 9),
        (TxnKind::Chapter, 5),
        (TxnKind::RenameTopic, 2),
        (TxnKind::LendAndReturn, 8),
    ];
    let total: u32 = WEIGHTED.iter().map(|(_, w)| w).sum();
    let mut draw = rng.random_range(0..total);
    for (kind, w) in WEIGHTED {
        if draw < w {
            return kind;
        }
        draw -= w;
    }
    TxnKind::QueryBook
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_skews_toward_low_ranks_and_stays_in_range() {
        let zipf = Zipf::new(16, 1.0);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 16];
        for _ in 0..20_000 {
            let i = zipf.sample(&mut rng);
            counts[i] += 1;
        }
        // Rank 0 beats rank 1 beats the tail — with a wide margin at
        // 20k draws (p0 ≈ 0.30, p1 ≈ 0.15, p15 ≈ 0.02 for s=1, n=16).
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[8]);
        assert!(counts.iter().all(|&c| c > 0), "tail never sampled");
        let p: f64 = (0..16).map(|i| zipf.probability(i)).sum();
        assert!((p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let zipf = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((zipf.probability(i) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_sampling_is_deterministic_per_seed() {
        let zipf = Zipf::new(16, 1.1);
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..64).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    fn builds_a_catalog_of_populated_documents() {
        let cfg = BibConfig::tiny();
        let catalog = build_bib_catalog(CatalogConfig::default(), 3, &cfg).unwrap();
        assert_eq!(catalog.len(), 3);
        for i in 0..3 {
            let db = catalog.open(&doc_name(i)).unwrap();
            assert!(db.store().node_count() > 0, "doc {i} is empty");
            // Every document carries the full ID range.
            let txn = db.begin();
            assert!(txn.element_by_id("b0").unwrap().is_some());
            txn.commit().unwrap();
        }
    }

    #[test]
    fn kind_mix_covers_the_cluster1_types() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(sample_kind(&mut rng));
        }
        assert!(seen.contains(&TxnKind::QueryBook));
        assert!(seen.contains(&TxnKind::Chapter));
        assert!(seen.contains(&TxnKind::RenameTopic));
        assert!(seen.contains(&TxnKind::LendAndReturn));
        assert!(!seen.contains(&TxnKind::DelBook));
    }
}
