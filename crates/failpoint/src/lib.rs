//! # xtc-failpoint — deterministic fault injection
//!
//! A tiny failpoint facility for chaos-testing the lock manager, the
//! storage layer, the write-ahead log, and the transaction coordinator.
//! Call sites name a *site* (`"lock.acquire"`, `"store.page_read"`,
//! `"btree.split"`, `"txn.commit"`, `"wal.commit"`, `"wal.flush"`) and
//! ask [`eval`] whether a fault should fire; tests arm sites with
//! [`configure`] (probability, action, optional hit budget) under a
//! global seed set by [`set_seed`].
//!
//! ## Engine scopes
//!
//! The registry is process-wide, but a catalog hosts many engines in one
//! process — arming `wal.fsync` globally would kill *every* document's
//! WAL. Each engine therefore allocates a [`ScopeId`] with
//! [`next_scope`] and evaluates its sites with [`eval_in`]; chaos
//! harnesses arm one document with [`configure_in`] and its neighbors
//! never see the fault. The unscoped API stays source-compatible:
//! [`configure`] arms the [`GLOBAL`] scope, which every engine's
//! [`eval_in`] falls back to, so single-engine tests behave exactly as
//! before. When both a scoped and a global entry exist for a site, the
//! scoped one wins (most specific first).
//!
//! Determinism: every `(scope, site)` pair draws from its own
//! [SplitMix64] stream seeded from the global seed mixed with the site
//! name and scope id, so a given `(seed, call sequence)` always injects
//! the same faults. A `max_hits` budget makes faults "dry up", which
//! chaos tests use to guarantee that retried transactions eventually
//! succeed.
//!
//! **Zero cost by default**: without the `enabled` cargo feature, [`eval`]
//! is an inlined `None` and the whole registry is compiled out. Nothing
//! in production builds pays for this module.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Inject latency: the call site sleeps for the given duration.
    Delay(Duration),
    /// Inject an error: the call site returns its injected-fault error.
    Error,
}

/// Identity of one engine's failpoint namespace. Allocated with
/// [`next_scope`]; the zero scope is [`GLOBAL`].
pub type ScopeId = u64;

/// The process-wide scope: sites armed here fire in every engine (the
/// pre-catalog behavior, and what the unscoped API uses).
pub const GLOBAL: ScopeId = 0;

static NEXT_SCOPE: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh engine scope. Always available (scope ids are
/// plumbed through engine construction whether or not faults are
/// compiled in); never returns [`GLOBAL`].
pub fn next_scope() -> ScopeId {
    NEXT_SCOPE.fetch_add(1, Ordering::Relaxed)
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{FailAction, ScopeId, GLOBAL};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    /// SplitMix64: tiny, fast, and statistically fine for fault dice.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn mix_site(seed: u64, site: &str, scope: ScopeId) -> u64 {
        // FNV-1a over the site name, folded into the global seed; the
        // scope folds in last so the GLOBAL scope (0) reproduces the
        // historical stream byte-for-byte.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in site.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        (seed ^ h) ^ scope.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    struct Site {
        probability: f64,
        action: FailAction,
        /// Remaining injections before the site goes quiet (`None` =
        /// unlimited).
        remaining: Option<u64>,
        rng: u64,
        hits: u64,
    }

    struct Registry {
        seed: u64,
        /// Scope → site name → armed state. The GLOBAL scope is the
        /// fallback every scoped eval consults when it has no entry of
        /// its own.
        scopes: HashMap<ScopeId, HashMap<String, Site>>,
    }

    static SEED: AtomicU64 = AtomicU64::new(0);

    fn registry() -> &'static Mutex<Registry> {
        static REG: std::sync::OnceLock<Mutex<Registry>> = std::sync::OnceLock::new();
        REG.get_or_init(|| {
            Mutex::new(Registry {
                seed: 0,
                scopes: HashMap::new(),
            })
        })
    }

    /// Poison-tolerant lock. Chaos tests panic threads on purpose; if one
    /// of them dies between `lock()` and drop, the registry data is still
    /// a plain `HashMap` in a consistent state (no invariant spans the
    /// critical section), so later callers keep going instead of
    /// cascading `PoisonError` panics through every `eval`.
    fn lock_registry() -> std::sync::MutexGuard<'static, Registry> {
        registry()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Test hook: poison the registry mutex by panicking while holding it.
    #[cfg(test)]
    pub(crate) fn poison_registry_for_test() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let _ = std::panic::catch_unwind(|| {
            let _guard = registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            panic!("deliberate poison");
        });
        std::panic::set_hook(prev);
    }

    pub fn set_seed(seed: u64) {
        SEED.store(seed, Ordering::Relaxed);
        let mut reg = lock_registry();
        reg.seed = seed;
        // Re-derive the stream of every already-armed site.
        for (&scope, sites) in reg.scopes.iter_mut() {
            for (name, site) in sites.iter_mut() {
                site.rng = mix_site(seed, name, scope);
            }
        }
    }

    pub fn configure_in(
        scope: ScopeId,
        site: &str,
        probability: f64,
        action: FailAction,
        max_hits: Option<u64>,
    ) {
        let mut reg = lock_registry();
        let rng = mix_site(reg.seed, site, scope);
        reg.scopes.entry(scope).or_default().insert(
            site.to_string(),
            Site {
                probability: probability.clamp(0.0, 1.0),
                action,
                remaining: max_hits,
                rng,
                hits: 0,
            },
        );
    }

    pub fn clear() {
        lock_registry().scopes.clear();
    }

    pub fn clear_scope(scope: ScopeId) {
        lock_registry().scopes.remove(&scope);
    }

    pub fn hits_in(scope: ScopeId, site: &str) -> u64 {
        lock_registry()
            .scopes
            .get(&scope)
            .and_then(|sites| sites.get(site))
            .map(|s| s.hits)
            .unwrap_or(0)
    }

    pub fn eval_in(scope: ScopeId, site: &str) -> Option<FailAction> {
        let mut reg = lock_registry();
        // Most specific first: the engine's own entry shadows a global
        // one; with neither armed the site is silent.
        let s = match reg.scopes.get_mut(&scope).and_then(|m| m.get_mut(site)) {
            Some(s) => s,
            None if scope != GLOBAL => reg.scopes.get_mut(&GLOBAL)?.get_mut(site)?,
            None => return None,
        };
        if s.remaining == Some(0) {
            return None;
        }
        // Uniform in [0, 1) from the top 53 bits.
        let draw = (splitmix64(&mut s.rng) >> 11) as f64 / (1u64 << 53) as f64;
        if draw >= s.probability {
            return None;
        }
        if let Some(r) = s.remaining.as_mut() {
            *r -= 1;
        }
        s.hits += 1;
        Some(s.action)
    }
}

/// Evaluates a failpoint site in an engine scope: `Some(action)` when an
/// armed site fires. A site armed in the engine's own scope shadows a
/// [`GLOBAL`] entry; with neither armed the site is silent.
///
/// Compiled to an inlined `None` without the `enabled` feature.
#[cfg(feature = "enabled")]
pub fn eval_in(scope: ScopeId, site: &str) -> Option<FailAction> {
    imp::eval_in(scope, site)
}

/// Evaluates a failpoint site in an engine scope: `Some(action)` when an
/// armed site fires. A site armed in the engine's own scope shadows a
/// [`GLOBAL`] entry; with neither armed the site is silent.
///
/// Compiled to an inlined `None` without the `enabled` feature.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn eval_in(_scope: ScopeId, _site: &str) -> Option<FailAction> {
    None
}

/// Evaluates a failpoint site in the [`GLOBAL`] scope.
///
/// Compiled to an inlined `None` without the `enabled` feature.
#[inline]
pub fn eval(site: &str) -> Option<FailAction> {
    eval_in(GLOBAL, site)
}

/// Arms a site in one engine's scope: with probability `probability`
/// each [`eval_in`] from that scope returns `Some(action)`, at most
/// `max_hits` times in total (`None` = no cap). Other engines are
/// unaffected.
///
/// No-op without the `enabled` feature.
pub fn configure_in(
    scope: ScopeId,
    site: &str,
    probability: f64,
    action: FailAction,
    max_hits: Option<u64>,
) {
    #[cfg(feature = "enabled")]
    imp::configure_in(scope, site, probability, action, max_hits);
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (scope, site, probability, action, max_hits);
    }
}

/// Arms a site in the [`GLOBAL`] scope: it fires in *every* engine
/// (the single-engine behavior this API has always had).
///
/// No-op without the `enabled` feature.
pub fn configure(site: &str, probability: f64, action: FailAction, max_hits: Option<u64>) {
    configure_in(GLOBAL, site, probability, action, max_hits);
}

/// Sets the global seed and re-derives every armed site's random stream.
///
/// No-op without the `enabled` feature.
pub fn set_seed(seed: u64) {
    #[cfg(feature = "enabled")]
    imp::set_seed(seed);
    #[cfg(not(feature = "enabled"))]
    let _ = seed;
}

/// Disarms all sites in every scope.
///
/// No-op without the `enabled` feature.
pub fn clear() {
    #[cfg(feature = "enabled")]
    imp::clear();
}

/// Disarms all sites of one engine's scope, leaving every other scope
/// (including [`GLOBAL`]) armed.
///
/// No-op without the `enabled` feature.
pub fn clear_scope(scope: ScopeId) {
    #[cfg(feature = "enabled")]
    imp::clear_scope(scope);
    #[cfg(not(feature = "enabled"))]
    let _ = scope;
}

/// Number of times the site has fired in one engine's scope (0 when the
/// feature is off or the site is unknown). Evals that fell back to the
/// [`GLOBAL`] entry count against [`GLOBAL`], not the falling-back scope.
pub fn hits_in(scope: ScopeId, site: &str) -> u64 {
    #[cfg(feature = "enabled")]
    return imp::hits_in(scope, site);
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (scope, site);
        0
    }
}

/// Number of times the site has fired in the [`GLOBAL`] scope since it
/// was armed (0 when the feature is off or the site is unknown).
pub fn hits(site: &str) -> u64 {
    hits_in(GLOBAL, site)
}

/// Outcome of an I/O-fault evaluation ([`eval_io`]) at a site modelling
/// a device operation (WAL append, fsync, page read, eviction write).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// The operation succeeds (site unarmed, fault did not fire, or the
    /// `enabled` feature is off).
    Ok,
    /// The fault fired but dried up within the retry budget: the caller
    /// should treat the operation as having succeeded after `retries`
    /// in-site retries (the backoff sleeps already happened).
    Transient {
        /// How many faulted attempts preceded the success.
        retries: u32,
    },
    /// The fault fired on every attempt in the budget: the caller must
    /// fail the operation permanently (poison the engine, crash the log —
    /// gracefully, never by panicking).
    Permanent,
}

/// Evaluates an I/O failpoint with a transient-retry budget, in one
/// engine's scope.
///
/// The site is [`eval_in`]uated up to `attempts` times. Each firing
/// [`FailAction::Error`] models one failed device operation; between
/// failed attempts the caller's thread backs off `base << attempt`
/// (deterministic, so a seeded storm reproduces byte-for-byte). A firing
/// [`FailAction::Delay`] models a slow-but-successful operation: the
/// thread sleeps the configured delay and the fault counts as transient.
/// Budgeted sites (`max_hits`) therefore model transient faults that dry
/// up; unlimited sites at probability 1.0 model a dead device.
///
/// Compiled to an inlined [`IoFault::Ok`] without the `enabled` feature.
pub fn eval_io_in(scope: ScopeId, site: &str, attempts: u32, base: Duration) -> IoFault {
    let mut faults = 0u32;
    loop {
        match eval_in(scope, site) {
            None => {
                return if faults == 0 {
                    IoFault::Ok
                } else {
                    IoFault::Transient { retries: faults }
                };
            }
            Some(FailAction::Delay(d)) => {
                std::thread::sleep(d);
                return IoFault::Transient { retries: faults };
            }
            Some(FailAction::Error) => {
                faults += 1;
                if faults >= attempts.max(1) {
                    return IoFault::Permanent;
                }
                // Exponential backoff before re-attempting the device op;
                // the shift is bounded so a large budget cannot overflow.
                let shift = (faults - 1).min(16);
                std::thread::sleep(base * (1u32 << shift));
            }
        }
    }
}

/// Evaluates an I/O failpoint with a transient-retry budget in the
/// [`GLOBAL`] scope (see [`eval_io_in`]).
#[inline]
pub fn eval_io(site: &str, attempts: u32, base: Duration) -> IoFault {
    eval_io_in(GLOBAL, site, attempts, base)
}

/// Convenience for delay-only sites, in one engine's scope: sleeps if
/// the site fires with [`FailAction::Delay`]; returns `true` if the site
/// fired with [`FailAction::Error`] (callers that have no error path may
/// treat it as a no-op).
pub fn fire_delay_in(scope: ScopeId, site: &str) -> bool {
    match eval_in(scope, site) {
        Some(FailAction::Delay(d)) => {
            std::thread::sleep(d);
            false
        }
        Some(FailAction::Error) => true,
        None => false,
    }
}

/// Convenience for delay-only sites in the [`GLOBAL`] scope (see
/// [`fire_delay_in`]).
#[inline]
pub fn fire_delay(site: &str) -> bool {
    fire_delay_in(GLOBAL, site)
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global; tests touching the seed must not
    /// interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn deterministic_per_seed_and_site() {
        let _g = TEST_LOCK.lock().unwrap();
        set_seed(7);
        configure("t.site", 0.5, FailAction::Error, None);
        let run1: Vec<bool> = (0..64).map(|_| eval("t.site").is_some()).collect();
        set_seed(7);
        configure("t.site", 0.5, FailAction::Error, None);
        let run2: Vec<bool> = (0..64).map(|_| eval("t.site").is_some()).collect();
        assert_eq!(run1, run2);
        assert!(run1.iter().any(|f| *f));
        assert!(run1.iter().any(|f| !*f));
        clear();
    }

    #[test]
    fn max_hits_dries_up() {
        let _g = TEST_LOCK.lock().unwrap();
        set_seed(1);
        configure("t.budget", 1.0, FailAction::Error, Some(3));
        let fired = (0..10).filter(|_| eval("t.budget").is_some()).count();
        assert_eq!(fired, 3);
        assert_eq!(hits("t.budget"), 3);
        clear();
    }

    #[test]
    fn unarmed_site_never_fires() {
        assert_eq!(eval("t.nothing"), None);
    }

    #[test]
    fn scoped_arming_is_invisible_to_other_scopes() {
        let _g = TEST_LOCK.lock().unwrap();
        clear();
        set_seed(5);
        let a = next_scope();
        let b = next_scope();
        configure_in(a, "t.scoped", 1.0, FailAction::Error, None);
        // Engine a sees its fault; engine b and the global scope do not.
        assert_eq!(eval_in(a, "t.scoped"), Some(FailAction::Error));
        assert_eq!(eval_in(b, "t.scoped"), None);
        assert_eq!(eval("t.scoped"), None);
        assert_eq!(hits_in(a, "t.scoped"), 1);
        assert_eq!(hits_in(b, "t.scoped"), 0);
        clear();
    }

    #[test]
    fn global_arming_reaches_every_scope() {
        let _g = TEST_LOCK.lock().unwrap();
        clear();
        set_seed(5);
        let a = next_scope();
        let b = next_scope();
        configure("t.everywhere", 1.0, FailAction::Error, Some(3));
        assert_eq!(eval_in(a, "t.everywhere"), Some(FailAction::Error));
        assert_eq!(eval_in(b, "t.everywhere"), Some(FailAction::Error));
        assert_eq!(eval("t.everywhere"), Some(FailAction::Error));
        // All three draws consumed the single global entry's budget.
        assert_eq!(hits("t.everywhere"), 3);
        assert_eq!(eval_in(a, "t.everywhere"), None);
        clear();
    }

    #[test]
    fn scoped_entry_shadows_global() {
        let _g = TEST_LOCK.lock().unwrap();
        clear();
        set_seed(5);
        let a = next_scope();
        configure("t.shadow", 1.0, FailAction::Error, None);
        configure_in(a, "t.shadow", 0.0, FailAction::Error, None);
        // a's own (never-firing) entry wins over the always-firing
        // global one; other scopes still hit the global entry.
        assert_eq!(eval_in(a, "t.shadow"), None);
        assert_eq!(eval_in(next_scope(), "t.shadow"), Some(FailAction::Error));
        clear();
    }

    #[test]
    fn clear_scope_leaves_neighbors_armed() {
        let _g = TEST_LOCK.lock().unwrap();
        clear();
        set_seed(5);
        let a = next_scope();
        let b = next_scope();
        configure_in(a, "t.half", 1.0, FailAction::Error, None);
        configure_in(b, "t.half", 1.0, FailAction::Error, None);
        clear_scope(a);
        assert_eq!(eval_in(a, "t.half"), None);
        assert_eq!(eval_in(b, "t.half"), Some(FailAction::Error));
        clear();
    }

    #[test]
    fn registry_survives_a_poisoned_mutex() {
        let _g = TEST_LOCK.lock().unwrap();
        imp::poison_registry_for_test();
        // Every public entry point must keep working after the poison.
        set_seed(3);
        configure("t.poison", 1.0, FailAction::Error, Some(2));
        assert_eq!(eval("t.poison"), Some(FailAction::Error));
        assert_eq!(hits("t.poison"), 1);
        clear();
        assert_eq!(eval("t.poison"), None);
    }

    #[test]
    fn eval_io_unarmed_is_ok() {
        let _g = TEST_LOCK.lock().unwrap();
        clear();
        assert_eq!(eval_io("t.io.none", 3, Duration::ZERO), IoFault::Ok);
    }

    #[test]
    fn eval_io_budgeted_fault_is_transient() {
        let _g = TEST_LOCK.lock().unwrap();
        set_seed(11);
        // Two faults in the budget, three attempts allowed: the site
        // dries up inside the retry loop.
        configure("t.io.transient", 1.0, FailAction::Error, Some(2));
        assert_eq!(
            eval_io("t.io.transient", 3, Duration::ZERO),
            IoFault::Transient { retries: 2 }
        );
        // Budget exhausted: later operations see a healthy device.
        assert_eq!(eval_io("t.io.transient", 3, Duration::ZERO), IoFault::Ok);
        clear();
    }

    #[test]
    fn eval_io_unlimited_fault_is_permanent() {
        let _g = TEST_LOCK.lock().unwrap();
        set_seed(11);
        configure("t.io.dead", 1.0, FailAction::Error, None);
        assert_eq!(eval_io("t.io.dead", 4, Duration::ZERO), IoFault::Permanent);
        clear();
    }

    #[test]
    fn eval_io_delay_is_transient_slow_success() {
        let _g = TEST_LOCK.lock().unwrap();
        set_seed(11);
        configure(
            "t.io.slow",
            1.0,
            FailAction::Delay(Duration::from_micros(50)),
            Some(1),
        );
        assert_eq!(
            eval_io("t.io.slow", 3, Duration::ZERO),
            IoFault::Transient { retries: 0 }
        );
        clear();
    }
}
