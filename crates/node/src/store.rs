//! The node manager: navigational and IUD access to one taDOM document.

use crate::record::{NodeData, NodeKind};
use std::sync::{Arc, Mutex};
use xtc_splid::{encode, subtree_upper_bound, LabelAllocator, SplId};
use xtc_storage::{
    BTree, BTreeConfig, CuckooFilter, EvictPolicy, PageBackendConfig, StorageError, StorageStats,
    VocId, Vocabulary,
};

/// Configuration for a [`DocStore`].
#[derive(Debug, Clone)]
pub struct DocStoreConfig {
    /// B\*-tree page size.
    pub page_size: usize,
    /// SPLID gap parameter (`dist`, §3.2).
    pub dist: u32,
    /// Simulated per-page-read latency (default zero): the stand-in for
    /// the paper's disk accesses (CLUSTER2 uses it — see EXPERIMENTS.md).
    pub read_latency: std::time::Duration,
    /// Simulated per-write-back latency (default zero), charged as
    /// `page_write_us` virtual time.
    pub write_latency: std::time::Duration,
    /// Extra simulated latency charged only on buffer misses (default
    /// zero) — the storage bench's price for a fault-in.
    pub miss_latency: std::time::Duration,
    /// Buffer residency budget per underlying tree (document, element
    /// index, ID index); `None` = unbounded. Evicted pages fault back in
    /// as buffer misses — see `xtc_storage::PoolStats`.
    pub max_resident_pages: Option<usize>,
    /// Eviction policy under the residency budget (default:
    /// scan-resistant LRU-2).
    pub evict_policy: EvictPolicy,
    /// Hit/miss counting window in LRU-clock ticks: repeated touches of
    /// one page within the window count as a single logical reference
    /// (`xtc_storage::PoolConfig::burst_ticks`). The storage bench
    /// widens it to transaction scale.
    pub burst_ticks: u64,
    /// When set, the three B\*-trees keep their page bytes in real page
    /// files under this directory (`doc.pages`, `elem.pages`,
    /// `id.pages`) — `pwrite` on write-back, `pread` + CRC verify on
    /// fault-in. `None` (default) = simulated storage.
    pub backend_dir: Option<std::path::PathBuf>,
    /// Cuckoo filters front the element and ID indexes: probes for
    /// names/values that were never indexed answer "absent" without a
    /// B\*-tree descent (default on; see `PoolStats::filter_negatives`).
    pub index_filters: bool,
    /// Approximate per-filter capacity. Overflowing it degrades the
    /// filter to always-"maybe" (correct, just no longer filtering).
    pub filter_capacity: usize,
    /// Observability handle shared with the engine: page reads charge
    /// their simulated latency to its virtual clock; page events trace
    /// through it when tracing is enabled.
    pub obs: xtc_obs::Obs,
    /// Failpoint scope shared with the engine: storage fault sites
    /// evaluate in it so chaos can target one document of a catalog.
    pub failpoint_scope: xtc_failpoint::ScopeId,
}

impl Default for DocStoreConfig {
    fn default() -> Self {
        DocStoreConfig {
            page_size: 8192,
            dist: 16,
            read_latency: std::time::Duration::ZERO,
            write_latency: std::time::Duration::ZERO,
            miss_latency: std::time::Duration::ZERO,
            max_resident_pages: None,
            evict_policy: EvictPolicy::default(),
            burst_ticks: xtc_storage::DEFAULT_CORRELATED_TICKS,
            backend_dir: None,
            index_filters: true,
            filter_capacity: 16 * 1024,
            obs: xtc_obs::Obs::default(),
            failpoint_scope: xtc_failpoint::GLOBAL,
        }
    }
}

/// Where to place an inserted node relative to existing ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertPos {
    /// As the first child (after the attribute root, if any).
    FirstChild,
    /// As the last child.
    LastChild,
    /// Immediately before this sibling.
    Before(SplId),
    /// Immediately after this sibling.
    After(SplId),
}

/// Node-manager errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeError {
    /// The addressed node does not exist.
    NotFound(SplId),
    /// Operation requires an element node.
    NotElement(SplId),
    /// Operation requires a text or attribute node.
    NotTextual(SplId),
    /// A root element already exists.
    RootExists,
    /// `Before`/`After` target is not a child of the given parent.
    NotAChild(SplId),
    /// Underlying storage error.
    Storage(StorageError),
    /// Label allocation failed.
    Alloc(xtc_splid::AllocError),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::NotFound(id) => write!(f, "node {id} not found"),
            NodeError::NotElement(id) => write!(f, "node {id} is not an element"),
            NodeError::NotTextual(id) => write!(f, "node {id} has no string content"),
            NodeError::RootExists => write!(f, "document already has a root element"),
            NodeError::NotAChild(id) => write!(f, "node {id} is not a child of the parent"),
            NodeError::Storage(e) => write!(f, "storage error: {e}"),
            NodeError::Alloc(e) => write!(f, "label allocation error: {e}"),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<StorageError> for NodeError {
    fn from(e: StorageError) -> Self {
        NodeError::Storage(e)
    }
}

impl From<xtc_splid::AllocError> for NodeError {
    fn from(e: xtc_splid::AllocError) -> Self {
        NodeError::Alloc(e)
    }
}


/// Result of [`DocStore::plan_attribute`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrPlan {
    /// The attribute already exists; setting it is a content update.
    Existing(SplId),
    /// A new attribute node would be created.
    New {
        /// Label of the (possibly not yet existing) attribute root.
        attr_root: SplId,
        /// Whether the attribute root already exists.
        attr_root_exists: bool,
        /// Label the new attribute node would receive.
        label: SplId,
        /// The current last attribute, if any.
        last: Option<SplId>,
    },
}

/// One stored taDOM document: document B\*-tree, element index, ID index,
/// vocabulary, label allocator. Thread-safe (`&self` API); performs no
/// transactional locking itself.
pub struct DocStore {
    doc: BTree,
    /// `[voc 2B][encoded SPLID] -> ()` — the element index / node-reference
    /// indexes of Figure 6b, folded into one tree.
    elem_index: BTree,
    /// `id value bytes -> encoded SPLID` of the owning element.
    id_index: BTree,
    vocab: Arc<Vocabulary>,
    alloc: LabelAllocator,
    stats: StorageStats,
    /// Interned name of the ID attribute (`"id"`).
    id_attr: VocId,
    /// Negative-lookup cache over element *names* present in the element
    /// index (`None` = filtering disabled). Keyed by name surrogate;
    /// refcounted in `elem_name_counts` because many elements share one
    /// name but the filter holds one entry per name.
    elem_filter: Option<Mutex<CuckooFilter>>,
    /// Live element count per name surrogate (only kept while filtering).
    elem_name_counts: Mutex<std::collections::HashMap<u16, u64>>,
    /// Negative-lookup cache over ID values present in the ID index
    /// (`None` = filtering disabled). ID values are unique keys, so no
    /// refcounting is needed — inserts/deletes mirror the index exactly.
    id_filter: Option<Mutex<CuckooFilter>>,
}

impl DocStore {
    /// Creates an empty document store.
    pub fn new(config: DocStoreConfig) -> Self {
        let stats = StorageStats::with_obs_scoped(config.obs.clone(), config.failpoint_scope);
        let backend = |file: &str| match &config.backend_dir {
            Some(dir) => PageBackendConfig::File {
                path: dir.join(file),
            },
            None => PageBackendConfig::Sim,
        };
        let btcfg = |file: &str| BTreeConfig {
            page_size: config.page_size,
            read_latency: config.read_latency,
            write_latency: config.write_latency,
            miss_latency: config.miss_latency,
            max_resident: config.max_resident_pages,
            policy: config.evict_policy,
            backend: backend(file),
            burst_ticks: config.burst_ticks,
            ..BTreeConfig::default()
        };
        let vocab = Arc::new(Vocabulary::new());
        let id_attr = vocab.intern("id");
        let filter = || {
            config
                .index_filters
                .then(|| Mutex::new(CuckooFilter::with_capacity(config.filter_capacity)))
        };
        DocStore {
            doc: BTree::with_config(btcfg("doc.pages"), stats.clone()),
            elem_index: BTree::with_config(btcfg("elem.pages"), stats.clone()),
            id_index: BTree::with_config(btcfg("id.pages"), stats.clone()),
            vocab,
            alloc: LabelAllocator::new(config.dist),
            stats,
            id_attr,
            elem_filter: filter(),
            elem_name_counts: Mutex::new(std::collections::HashMap::new()),
            id_filter: filter(),
        }
    }

    /// Shared page-access statistics across document and indexes.
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }

    /// The vocabulary (shared with callers that pre-intern names).
    pub fn vocab(&self) -> &Arc<Vocabulary> {
        &self.vocab
    }

    /// The label allocator in use.
    pub fn allocator(&self) -> LabelAllocator {
        self.alloc
    }

    /// Total stored nodes (all five kinds).
    pub fn node_count(&self) -> usize {
        self.doc.len()
    }

    /// Occupancy report of the document tree (§3.1 claim).
    pub fn occupancy(&self) -> xtc_storage::OccupancyReport {
        self.doc.occupancy()
    }

    /// Every stored node in document order — the checkpoint snapshot and
    /// the byte-identity witness of the undo property test.
    pub fn all_nodes(&self) -> Vec<(SplId, NodeData)> {
        self.doc
            .scan_range(b"", &[0xFF; 160])
            .into_iter()
            .map(|(k, v)| {
                (
                    xtc_splid::decode(&k).expect("corrupt key"),
                    NodeData::decode(&v).expect("corrupt record"),
                )
            })
            .collect()
    }

    /// Cross-checks the element index and ID index against the document
    /// tree. Returns a list of human-readable inconsistencies (empty =
    /// consistent) — the post-recovery invariant the crash tests assert.
    pub fn verify_indexes(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let nodes = self.all_nodes();
        // Every element must have exactly its one index entry; collect the
        // expected set, then compare both directions.
        let mut expected: Vec<Vec<u8>> = Vec::new();
        for (id, data) in &nodes {
            if let NodeData::Element { name } = data {
                expected.push(index_key(*name, &encode(id)));
            }
        }
        expected.sort();
        let actual: Vec<Vec<u8>> = self
            .elem_index
            .scan_range(b"", &[0xFF; 160])
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        for k in &expected {
            if actual.binary_search(k).is_err() {
                problems.push(format!("element index missing entry {k:?}"));
            }
        }
        for k in &actual {
            if expected.binary_search(k).is_err() {
                problems.push(format!("element index has stale entry {k:?}"));
            }
        }
        // ID index: every entry must point at a live element that owns an
        // id attribute with that value, and every id attribute must be
        // indexed.
        for (val, enc) in self.id_index.scan_range(b"", &[0xFF; 160]) {
            let owner = match xtc_splid::decode(&enc) {
                Ok(o) => o,
                Err(_) => {
                    problems.push(format!("id index entry {val:?} has corrupt SPLID"));
                    continue;
                }
            };
            let val = String::from_utf8_lossy(&val).into_owned();
            if self.attribute_value(&owner, "id").as_deref() != Some(val.as_str()) {
                problems.push(format!("id index entry {val:?} does not match element"));
            }
        }
        for (id, data) in &nodes {
            if matches!(data, NodeData::Attribute { name } if *name == self.id_attr) {
                if let (Some(val), Some(owner)) =
                    (self.text_of(id), id.parent().and_then(|ar| ar.parent()))
                {
                    if self.element_by_id(&val) != Some(owner) {
                        problems.push(format!("id attribute {val:?} not indexed"));
                    }
                }
            }
        }
        problems
    }

    /// Flushes every dirty page whose covering log record is durable
    /// across the document tree and both indexes (the WAL-rule write-back
    /// a checkpoint performs). Returns how many pages were flushed.
    pub fn flush_all(&self, durable_lsn: u64) -> usize {
        self.doc.flush_dirty(durable_lsn)
            + self.elem_index.flush_dirty(durable_lsn)
            + self.id_index.flush_dirty(durable_lsn)
    }

    /// Aggregated buffer-manager snapshot across the document tree and
    /// both indexes.
    pub fn pool_stats(&self) -> xtc_storage::PoolStats {
        let d = self.doc.pool_stats();
        let e = self.elem_index.pool_stats();
        let i = self.id_index.pool_stats();
        xtc_storage::PoolStats {
            hits: d.hits, // counters are shared via StorageStats: equal on all three
            misses: d.misses,
            flushes: d.flushes,
            evictions: d.evictions,
            evict_blocked: d.evict_blocked,
            flush_faults: d.flush_faults,
            ghost_hits: d.ghost_hits,
            forced_writebacks: d.forced_writebacks,
            filter_negatives: d.filter_negatives,
            filter_probes: d.filter_probes,
            dirty: d.dirty + e.dirty + i.dirty,
            resident: d.resident + e.resident + i.resident,
            live: d.live + e.live + i.live,
        }
    }

    // ---- reads ----------------------------------------------------------

    /// Fetches and decodes a node.
    pub fn get(&self, id: &SplId) -> Option<NodeData> {
        let bytes = self.doc.get(&encode(id))?;
        Some(NodeData::decode(&bytes).expect("corrupt node record"))
    }

    /// `true` if the node exists.
    pub fn exists(&self, id: &SplId) -> bool {
        self.doc.contains(&encode(id))
    }

    /// Resolves an element or attribute name.
    pub fn name_of(&self, id: &SplId) -> Option<String> {
        self.get(id)?.name().and_then(|v| self.vocab.resolve(v))
    }

    /// First child in document order (the attribute root, if present,
    /// sorts first).
    pub fn first_child(&self, id: &SplId) -> Option<SplId> {
        let (k, _) = self.doc.next_after(&encode(id))?;
        let cand = xtc_splid::decode(&k).expect("corrupt key");
        id.is_parent_of(&cand).then_some(cand)
    }

    /// Last child in document order.
    pub fn last_child(&self, id: &SplId) -> Option<SplId> {
        let (k, _) = self.doc.prev_before(&subtree_upper_bound(id))?;
        let cand = xtc_splid::decode(&k).expect("corrupt key");
        if !id.is_ancestor_of(&cand) {
            return None;
        }
        // The last stored descendant lies inside the last child's subtree.
        cand.ancestor_at_level(id.level() + 1)
    }

    /// Next sibling in document order.
    pub fn next_sibling(&self, id: &SplId) -> Option<SplId> {
        let (k, _) = self.doc.next_after(&subtree_upper_bound(id))?;
        let cand = xtc_splid::decode(&k).expect("corrupt key");
        id.is_sibling_of(&cand).then_some(cand)
    }

    /// Previous sibling in document order.
    pub fn prev_sibling(&self, id: &SplId) -> Option<SplId> {
        let parent = id.parent()?;
        let (k, _) = self.doc.prev_before(&encode(id))?;
        let cand = xtc_splid::decode(&k).expect("corrupt key");
        if cand == parent {
            return None;
        }
        // `cand` is the closest preceding node: either inside the previous
        // sibling's subtree or the previous sibling itself.
        let sib = cand.ancestor_at_level(id.level())?;
        sib.is_sibling_of(id).then_some(sib)
    }

    /// Parent node (label arithmetic; verified to exist).
    pub fn parent(&self, id: &SplId) -> Option<SplId> {
        let p = id.parent()?;
        self.exists(&p).then_some(p)
    }

    /// All direct children in document order (including the attribute
    /// root). This is the `getChildNodes` fan-out the taDOM level locks
    /// were invented for.
    pub fn children(&self, id: &SplId) -> Vec<SplId> {
        let mut out = Vec::new();
        let mut cur = self.first_child(id);
        while let Some(c) = cur {
            cur = self.next_sibling(&c);
            out.push(c);
        }
        out
    }

    /// Direct element children only.
    pub fn element_children(&self, id: &SplId) -> Vec<SplId> {
        self.children(id)
            .into_iter()
            .filter(|c| matches!(self.get(c), Some(NodeData::Element { .. })))
            .collect()
    }

    /// The attribute root of an element, if it has attributes.
    pub fn attribute_root(&self, elem: &SplId) -> Option<SplId> {
        let ar = elem.reserved_child();
        self.exists(&ar).then_some(ar)
    }

    /// `(attribute node, name)` pairs of an element.
    pub fn attributes(&self, elem: &SplId) -> Vec<(SplId, VocId)> {
        let Some(ar) = self.attribute_root(elem) else {
            return Vec::new();
        };
        self.children(&ar)
            .into_iter()
            .filter_map(|a| match self.get(&a) {
                Some(NodeData::Attribute { name }) => Some((a, name)),
                _ => None,
            })
            .collect()
    }

    /// The attribute node of `elem` with the given name.
    pub fn attribute_node(&self, elem: &SplId, name: &str) -> Option<SplId> {
        let voc = self.vocab.lookup(name)?;
        self.attributes(elem)
            .into_iter()
            .find(|(_, n)| *n == voc)
            .map(|(a, _)| a)
    }

    /// The string value of an attribute of `elem`.
    pub fn attribute_value(&self, elem: &SplId, name: &str) -> Option<String> {
        let attr = self.attribute_node(elem, name)?;
        self.text_of(&attr)
    }

    /// The content of a text or attribute node (its string child).
    pub fn text_of(&self, node: &SplId) -> Option<String> {
        match self.get(&node.reserved_child())? {
            NodeData::String { value } => Some(String::from_utf8_lossy(&value).into_owned()),
            _ => None,
        }
    }

    /// Direct jump via the ID index (`getElementById`). When the ID
    /// filter is on, probes for values that were never indexed are
    /// answered "absent" without descending the B\*-tree (zero page
    /// reads).
    pub fn element_by_id(&self, id_value: &str) -> Option<SplId> {
        if let Some(filter) = &self.id_filter {
            self.stats.count_filter_probe();
            if !filter.lock().unwrap().contains(id_value.as_bytes()) {
                self.stats.count_filter_negative();
                self.stats.obs().record(xtc_obs::EventKind::FilterNegative {
                    key: fnv64(id_value.as_bytes()),
                });
                return None;
            }
        }
        let enc = self.id_index.get(id_value.as_bytes())?;
        Some(xtc_splid::decode(&enc).expect("corrupt id index"))
    }

    /// All elements with the given name, in document order (the element
    /// index / node-reference index of Figure 6b).
    pub fn elements_named(&self, name: &str) -> Vec<SplId> {
        let Some(voc) = self.vocab.lookup(name) else {
            return Vec::new();
        };
        // The name may be interned (e.g. by an attribute) without any
        // live *element* carrying it: the filter skips the index descent.
        if let Some(filter) = &self.elem_filter {
            self.stats.count_filter_probe();
            if !filter.lock().unwrap().contains(&voc.to_bytes()) {
                self.stats.count_filter_negative();
                self.stats.obs().record(xtc_obs::EventKind::FilterNegative {
                    key: u64::from(voc.0),
                });
                return Vec::new();
            }
        }
        let lo = voc.to_bytes().to_vec();
        // Exclusive upper bound: the next surrogate value (all index keys
        // are strictly longer than `lo`, so `lo` itself is safely
        // exclusive below).
        let hi = match voc.0.checked_add(1) {
            Some(n) => n.to_be_bytes().to_vec(),
            None => {
                let mut h = vec![0xFF, 0xFF];
                h.extend_from_slice(&[0xFF; 140]);
                h
            }
        };
        self.elem_index
            .scan_range(&lo, &hi)
            .into_iter()
            .map(|(k, _)| xtc_splid::decode(&k[2..]).expect("corrupt element index"))
            .collect()
    }

    /// The whole subtree rooted at `id` (inclusive), in document order.
    pub fn subtree(&self, id: &SplId) -> Vec<(SplId, NodeData)> {
        let mut out = Vec::new();
        if let Some(root) = self.get(id) {
            out.push((id.clone(), root));
        }
        for (k, v) in self.doc.scan_range(&encode(id), &subtree_upper_bound(id)) {
            out.push((
                xtc_splid::decode(&k).expect("corrupt key"),
                NodeData::decode(&v).expect("corrupt record"),
            ));
        }
        out
    }

    /// SPLIDs of every node in the subtree rooted at `id` (inclusive),
    /// in document order.
    pub fn subtree_ids(&self, id: &SplId) -> Vec<SplId> {
        let mut out = Vec::new();
        if self.exists(id) {
            out.push(id.clone());
        }
        self.doc
            .for_each_in_range(&encode(id), &subtree_upper_bound(id), |k, _| {
                out.push(xtc_splid::decode(k).expect("corrupt key"));
                true
            });
        out
    }

    /// Number of nodes in the subtree rooted at `id` (inclusive).
    pub fn subtree_size(&self, id: &SplId) -> usize {
        let mut n = usize::from(self.exists(id));
        self.doc
            .for_each_in_range(&encode(id), &subtree_upper_bound(id), |_, _| {
                n += 1;
                true
            });
        n
    }

    /// Elements inside the subtree (inclusive) that own an `id` attribute.
    ///
    /// This is the expensive location step the *-2PL group must perform
    /// before deleting a subtree (IDX locks, §5.3/CLUSTER2): it traverses
    /// the whole subtree via the node manager, paying page accesses per
    /// node.
    pub fn subtree_id_owners(&self, id: &SplId) -> Vec<SplId> {
        // Deliberately *navigational*: the paper's point is that these
        // "location steps have to be performed via the node manager and
        // may include accesses to disks" — every element visit pays the
        // node-manager lookups a navigating client would pay, instead of
        // one bulk range scan.
        let mut owners = Vec::new();
        let mut stack = vec![id.clone()];
        while let Some(n) = stack.pop() {
            if !matches!(self.get(&n), Some(NodeData::Element { .. })) {
                continue;
            }
            if self
                .attributes(&n)
                .iter()
                .any(|(_, name)| *name == self.id_attr)
            {
                owners.push(n.clone());
            }
            let mut kids = self.element_children(&n);
            kids.reverse();
            stack.extend(kids);
        }
        owners.sort();
        owners
    }

    // ---- writes ----------------------------------------------------------

    /// Creates the document root element. Fails if one exists.
    pub fn create_root(&self, name: &str) -> Result<SplId, NodeError> {
        let root = SplId::root();
        if self.exists(&root) {
            return Err(NodeError::RootExists);
        }
        let name = self.vocab.intern(name);
        self.put_node(&root, &NodeData::Element { name })?;
        Ok(root)
    }

    /// Inserts a new element under `parent`.
    pub fn insert_element(
        &self,
        parent: &SplId,
        pos: InsertPos,
        name: &str,
    ) -> Result<SplId, NodeError> {
        self.require_element(parent)?;
        let label = self.place(parent, pos)?;
        let name = self.vocab.intern(name);
        self.put_node(&label, &NodeData::Element { name })?;
        Ok(label)
    }

    /// Inserts a new text node (with its string child) under `parent`.
    pub fn insert_text(
        &self,
        parent: &SplId,
        pos: InsertPos,
        content: &str,
    ) -> Result<SplId, NodeError> {
        self.require_element(parent)?;
        let label = self.place(parent, pos)?;
        self.put_node(&label, &NodeData::Text)?;
        self.put_node(
            &label.reserved_child(),
            &NodeData::String {
                value: content.as_bytes().to_vec(),
            },
        )?;
        Ok(label)
    }

    /// Sets (creating or updating) an attribute of an element. Returns the
    /// attribute node and the previous value, if any.
    pub fn set_attribute(
        &self,
        elem: &SplId,
        name: &str,
        value: &str,
    ) -> Result<(SplId, Option<String>), NodeError> {
        self.require_element(elem)?;
        if let Some(attr) = self.attribute_node(elem, name) {
            let old = self.update_content(&attr, value)?;
            return Ok((attr, old));
        }
        let ar = elem.reserved_child();
        if !self.exists(&ar) {
            self.put_node(&ar, &NodeData::AttributeRoot)?;
        }
        let attr = match self.last_child(&ar) {
            Some(last) => self.alloc.next_sibling(&last)?,
            None => self.alloc.first_child(&ar),
        };
        let voc = self.vocab.intern(name);
        self.put_node(&attr, &NodeData::Attribute { name: voc })?;
        self.put_node(
            &attr.reserved_child(),
            &NodeData::String {
                value: value.as_bytes().to_vec(),
            },
        )?;
        if voc == self.id_attr {
            self.id_index_add(value.as_bytes(), &encode(elem))?;
        }
        Ok((attr, None))
    }

    /// Replaces the content (string child) of a text or attribute node;
    /// returns the previous content.
    pub fn update_content(&self, node: &SplId, content: &str) -> Result<Option<String>, NodeError> {
        let data = self.get(node).ok_or_else(|| NodeError::NotFound(node.clone()))?;
        let is_id_attr = matches!(&data, NodeData::Attribute { name } if *name == self.id_attr);
        if !matches!(data.kind(), NodeKind::Text | NodeKind::Attribute) {
            return Err(NodeError::NotTextual(node.clone()));
        }
        let sc = node.reserved_child();
        let old = self.doc.insert(
            &encode(&sc),
            &NodeData::String {
                value: content.as_bytes().to_vec(),
            }
            .encode(),
        )?;
        let old = old.map(|b| match NodeData::decode(&b).expect("corrupt record") {
            NodeData::String { value } => String::from_utf8_lossy(&value).into_owned(),
            _ => unreachable!("string child must be a string node"),
        });
        if is_id_attr {
            // Keep the ID index consistent under id-value updates.
            let owner = node.parent().and_then(|ar| ar.parent());
            if let (Some(owner), Some(old)) = (owner, &old) {
                self.id_index_del(old.as_bytes());
                self.id_index_add(content.as_bytes(), &encode(&owner))?;
            }
        }
        Ok(old)
    }

    /// Renames an element; returns the previous name surrogate.
    pub fn rename_element(&self, elem: &SplId, new_name: &str) -> Result<VocId, NodeError> {
        let data = self.get(elem).ok_or_else(|| NodeError::NotFound(elem.clone()))?;
        let NodeData::Element { name: old } = data else {
            return Err(NodeError::NotElement(elem.clone()));
        };
        let new = self.vocab.intern(new_name);
        self.doc
            .insert(&encode(elem), &NodeData::Element { name: new }.encode())?;
        let enc = encode(elem);
        self.elem_index_del(old, &enc);
        self.elem_index_add(new, &enc)?;
        Ok(old)
    }

    /// Deletes the subtree rooted at `id` (inclusive); returns the removed
    /// nodes for undo.
    pub fn delete_subtree(&self, id: &SplId) -> Result<Vec<(SplId, NodeData)>, NodeError> {
        let nodes = self.subtree(id);
        if nodes.is_empty() {
            return Err(NodeError::NotFound(id.clone()));
        }
        self.unindex(&nodes);
        self.doc.remove(&encode(id));
        self.doc
            .remove_range(&encode(id), &subtree_upper_bound(id));
        Ok(nodes)
    }

    /// Re-inserts previously deleted nodes with their original labels
    /// (undo of [`DocStore::delete_subtree`]).
    pub fn insert_raw(&self, nodes: &[(SplId, NodeData)]) -> Result<(), NodeError> {
        for (id, data) in nodes {
            self.doc.insert(&encode(id), &data.encode())?;
        }
        self.reindex(nodes);
        Ok(())
    }


    // ---- planning (for lock acquisition before mutation) ---------------

    /// Computes, without mutating anything, the label a node inserted at
    /// `pos` would receive together with its would-be left and right
    /// siblings. Deterministic: re-planning under unchanged neighbours
    /// yields the same label, so the transaction layer can lock first and
    /// verify the plan afterwards.
    pub fn plan_insert(
        &self,
        parent: &SplId,
        pos: &InsertPos,
    ) -> Result<(SplId, Option<SplId>, Option<SplId>), NodeError> {
        self.require_element(parent)?;
        let (left, right) = match pos {
            InsertPos::FirstChild => {
                let left = self.attribute_root(parent);
                let right = match &left {
                    Some(ar) => self.next_sibling(ar),
                    None => self.first_child(parent),
                };
                (left, right)
            }
            InsertPos::LastChild => (self.last_child(parent), None),
            InsertPos::Before(sib) => {
                if sib.parent().as_ref() != Some(parent) || !self.exists(sib) {
                    return Err(NodeError::NotAChild(sib.clone()));
                }
                (self.prev_sibling(sib), Some(sib.clone()))
            }
            InsertPos::After(sib) => {
                if sib.parent().as_ref() != Some(parent) || !self.exists(sib) {
                    return Err(NodeError::NotAChild(sib.clone()));
                }
                (Some(sib.clone()), self.next_sibling(sib))
            }
        };
        let label = match (&left, &right) {
            (None, None) => self.alloc.first_child(parent),
            (l, r) => self.alloc.between(l.as_ref(), r.as_ref())?,
        };
        Ok((label, left, right))
    }

    /// How setting an attribute would change the tree (for locking).
    pub fn plan_attribute(&self, elem: &SplId, name: &str) -> Result<AttrPlan, NodeError> {
        self.require_element(elem)?;
        if let Some(attr) = self.attribute_node(elem, name) {
            return Ok(AttrPlan::Existing(attr));
        }
        let attr_root = elem.reserved_child();
        let attr_root_exists = self.exists(&attr_root);
        let last = if attr_root_exists {
            self.last_child(&attr_root)
        } else {
            None
        };
        let label = match &last {
            Some(l) => self.alloc.next_sibling(l)?,
            None => self.alloc.first_child(&attr_root),
        };
        Ok(AttrPlan::New {
            attr_root,
            attr_root_exists,
            label,
            last,
        })
    }

    // ---- internals --------------------------------------------------------

    /// Inserts an element-index entry and keeps the name filter coherent:
    /// the first live element of a name enters the filter; duplicates
    /// only bump the refcount.
    fn elem_index_add(&self, name: VocId, enc: &[u8]) -> Result<(), StorageError> {
        if self.elem_index.insert(&index_key(name, enc), &[])?.is_none() {
            if let Some(filter) = &self.elem_filter {
                let mut counts = self.elem_name_counts.lock().unwrap();
                let n = counts.entry(name.0).or_insert(0);
                if *n == 0 {
                    filter.lock().unwrap().insert(&name.to_bytes());
                }
                *n += 1;
            }
        }
        Ok(())
    }

    /// Removes an element-index entry; the last live element of a name
    /// leaves the filter.
    fn elem_index_del(&self, name: VocId, enc: &[u8]) {
        if self.elem_index.remove(&index_key(name, enc)).is_some() {
            if let Some(filter) = &self.elem_filter {
                let mut counts = self.elem_name_counts.lock().unwrap();
                if let Some(n) = counts.get_mut(&name.0) {
                    *n = n.saturating_sub(1);
                    if *n == 0 {
                        counts.remove(&name.0);
                        filter.lock().unwrap().delete(&name.to_bytes());
                    }
                }
            }
        }
    }

    /// Inserts an ID-index entry, mirroring *new* keys into the filter
    /// (an overwrite changes the owner, not the key set).
    fn id_index_add(&self, value: &[u8], enc: &[u8]) -> Result<(), StorageError> {
        if self.id_index.insert(value, enc)?.is_none() {
            if let Some(filter) = &self.id_filter {
                filter.lock().unwrap().insert(value);
            }
        }
        Ok(())
    }

    /// Removes an ID-index entry, mirroring actual removals into the
    /// filter (deleting a never-inserted key could evict an unrelated
    /// fingerprint).
    fn id_index_del(&self, value: &[u8]) {
        if self.id_index.remove(value).is_some() {
            if let Some(filter) = &self.id_filter {
                filter.lock().unwrap().delete(value);
            }
        }
    }

    fn require_element(&self, id: &SplId) -> Result<(), NodeError> {
        match self.get(id) {
            Some(NodeData::Element { .. }) => Ok(()),
            Some(_) => Err(NodeError::NotElement(id.clone())),
            None => Err(NodeError::NotFound(id.clone())),
        }
    }

    /// Computes the label for a child inserted at `pos` under `parent`.
    fn place(&self, parent: &SplId, pos: InsertPos) -> Result<SplId, NodeError> {
        let label = match pos {
            InsertPos::FirstChild => {
                // Skip the attribute root: attributes always sort first.
                let left = self.attribute_root(parent);
                let right = match &left {
                    Some(ar) => self.next_sibling(ar),
                    None => self.first_child(parent),
                };
                match (left, right) {
                    (None, None) => self.alloc.first_child(parent),
                    (l, r) => self.alloc.between(l.as_ref(), r.as_ref())?,
                }
            }
            InsertPos::LastChild => match self.last_child(parent) {
                Some(last) => self.alloc.next_sibling(&last)?,
                None => self.alloc.first_child(parent),
            },
            InsertPos::Before(sib) => {
                if sib.parent().as_ref() != Some(parent) || !self.exists(&sib) {
                    return Err(NodeError::NotAChild(sib));
                }
                let left = self.prev_sibling(&sib);
                self.alloc.between(left.as_ref(), Some(&sib))?
            }
            InsertPos::After(sib) => {
                if sib.parent().as_ref() != Some(parent) || !self.exists(&sib) {
                    return Err(NodeError::NotAChild(sib));
                }
                let right = self.next_sibling(&sib);
                self.alloc.between(Some(&sib), right.as_ref())?
            }
        };
        Ok(label)
    }

    fn put_node(&self, id: &SplId, data: &NodeData) -> Result<(), NodeError> {
        self.doc.insert(&encode(id), &data.encode())?;
        if let NodeData::Element { name } = data {
            self.elem_index_add(*name, &encode(id))?;
        }
        Ok(())
    }

    /// Removes index entries for a deleted node set.
    fn unindex(&self, nodes: &[(SplId, NodeData)]) {
        for (id, data) in nodes {
            match data {
                NodeData::Element { name } => {
                    self.elem_index_del(*name, &encode(id));
                }
                NodeData::Attribute { name } if *name == self.id_attr => {
                    if let Some(val) = self.value_within(nodes, id) {
                        self.id_index_del(val.as_bytes());
                    }
                }
                _ => {}
            }
        }
    }

    /// Re-adds index entries for a restored node set.
    fn reindex(&self, nodes: &[(SplId, NodeData)]) {
        for (id, data) in nodes {
            match data {
                NodeData::Element { name } => {
                    let _ = self.elem_index_add(*name, &encode(id));
                }
                NodeData::Attribute { name } if *name == self.id_attr => {
                    if let (Some(val), Some(owner)) = (
                        self.value_within(nodes, id),
                        id.parent().and_then(|ar| ar.parent()),
                    ) {
                        let _ = self.id_index_add(val.as_bytes(), &encode(&owner));
                    }
                }
                _ => {}
            }
        }
    }

    /// Finds the string-child value of `node` inside an in-memory node set.
    fn value_within(&self, nodes: &[(SplId, NodeData)], node: &SplId) -> Option<String> {
        let sc = node.reserved_child();
        nodes.iter().find_map(|(id, data)| match data {
            NodeData::String { value } if *id == sc => {
                Some(String::from_utf8_lossy(value).into_owned())
            }
            _ => None,
        })
    }
}

/// FNV-1a over key bytes — stable tag for `FilterNegative` trace events.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

fn index_key(name: VocId, encoded_splid: &[u8]) -> Vec<u8> {
    let mut k = Vec::with_capacity(2 + encoded_splid.len());
    k.extend_from_slice(&name.to_bytes());
    k.extend_from_slice(encoded_splid);
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> DocStore {
        DocStore::new(DocStoreConfig::default())
    }

    /// Builds a small bib-like document and returns (store, book id).
    fn sample() -> (DocStore, SplId) {
        let s = store();
        let bib = s.create_root("bib").unwrap();
        let topics = s.insert_element(&bib, InsertPos::LastChild, "topics").unwrap();
        let topic = s.insert_element(&topics, InsertPos::LastChild, "topic").unwrap();
        s.set_attribute(&topic, "id", "t0").unwrap();
        let book = s.insert_element(&topic, InsertPos::LastChild, "book").unwrap();
        s.set_attribute(&book, "id", "b0").unwrap();
        s.set_attribute(&book, "year", "2006").unwrap();
        let title = s.insert_element(&book, InsertPos::LastChild, "title").unwrap();
        s.insert_text(&title, InsertPos::LastChild, "Transaction Processing").unwrap();
        let author = s.insert_element(&book, InsertPos::LastChild, "author").unwrap();
        s.insert_text(&author, InsertPos::LastChild, "Gray").unwrap();
        (s, book)
    }

    #[test]
    fn create_root_once() {
        let s = store();
        let r = s.create_root("bib").unwrap();
        assert!(r.is_root());
        assert_eq!(s.name_of(&r).as_deref(), Some("bib"));
        assert_eq!(s.create_root("other"), Err(NodeError::RootExists));
    }

    #[test]
    fn navigation_matches_structure() {
        let (s, book) = sample();
        let kids = s.element_children(&book);
        assert_eq!(kids.len(), 2);
        assert_eq!(s.name_of(&kids[0]).as_deref(), Some("title"));
        assert_eq!(s.name_of(&kids[1]).as_deref(), Some("author"));
        assert_eq!(s.next_sibling(&kids[0]), Some(kids[1].clone()));
        assert_eq!(s.prev_sibling(&kids[1]), Some(kids[0].clone()));
        assert_eq!(s.prev_sibling(&kids[0]).map(|p| s.get(&p).unwrap().kind()),
            Some(NodeKind::AttributeRoot), "attribute root precedes elements");
        assert_eq!(s.parent(&kids[0]), Some(book.clone()));
        // first_child of book is the attribute root; last child is author.
        assert_eq!(
            s.get(&s.first_child(&book).unwrap()).unwrap().kind(),
            NodeKind::AttributeRoot
        );
        assert_eq!(s.last_child(&book), Some(kids[1].clone()));
    }

    #[test]
    fn attributes_and_id_jump() {
        let (s, book) = sample();
        assert_eq!(s.attribute_value(&book, "year").as_deref(), Some("2006"));
        assert_eq!(s.attribute_value(&book, "missing"), None);
        assert_eq!(s.element_by_id("b0"), Some(book.clone()));
        assert_eq!(s.element_by_id("zzz"), None);
        assert_eq!(s.attributes(&book).len(), 2);
    }

    #[test]
    fn element_index_lists_in_document_order() {
        let (s, book) = sample();
        assert_eq!(s.elements_named("book"), vec![book.clone()]);
        assert_eq!(s.elements_named("title").len(), 1);
        assert_eq!(s.elements_named("nope"), Vec::<SplId>::new());
        let all_elems = s.elements_named("topic");
        assert_eq!(all_elems.len(), 1);
    }

    #[test]
    fn text_content_update() {
        let (s, book) = sample();
        let title = s.element_children(&book)[0].clone();
        let text = s
            .children(&title)
            .into_iter()
            .find(|c| matches!(s.get(c), Some(NodeData::Text)))
            .unwrap();
        assert_eq!(s.text_of(&text).as_deref(), Some("Transaction Processing"));
        let old = s.update_content(&text, "TP: Concepts").unwrap();
        assert_eq!(old.as_deref(), Some("Transaction Processing"));
        assert_eq!(s.text_of(&text).as_deref(), Some("TP: Concepts"));
        // Updating a non-textual node fails.
        assert!(matches!(
            s.update_content(&book, "x"),
            Err(NodeError::NotTextual(_))
        ));
    }

    #[test]
    fn rename_updates_element_index() {
        let (s, book) = sample();
        let topic = s.parent(&book).unwrap();
        s.rename_element(&topic, "subject").unwrap();
        assert_eq!(s.name_of(&topic).as_deref(), Some("subject"));
        assert!(s.elements_named("topic").is_empty());
        assert_eq!(s.elements_named("subject"), vec![topic]);
    }

    #[test]
    fn delete_subtree_and_undo() {
        let (s, book) = sample();
        let before = s.node_count();
        let removed = s.delete_subtree(&book).unwrap();
        assert!(removed.len() >= 10, "book subtree has many nodes");
        assert!(!s.exists(&book));
        assert_eq!(s.element_by_id("b0"), None, "id index entry removed");
        assert!(s.elements_named("book").is_empty());
        assert_eq!(s.node_count(), before - removed.len());
        // Undo restores everything, including indexes.
        s.insert_raw(&removed).unwrap();
        assert_eq!(s.node_count(), before);
        assert_eq!(s.element_by_id("b0"), Some(book.clone()));
        assert_eq!(s.elements_named("book"), vec![book]);
    }

    #[test]
    fn subtree_id_owners_finds_nested_ids() {
        let (s, book) = sample();
        let topics = s.elements_named("topics")[0].clone();
        let owners = s.subtree_id_owners(&topics);
        assert_eq!(owners.len(), 2, "topic and book own id attributes");
        assert!(owners.contains(&book));
    }

    #[test]
    fn insert_positions() {
        let s = store();
        let root = s.create_root("r").unwrap();
        let b = s.insert_element(&root, InsertPos::LastChild, "b").unwrap();
        let a = s.insert_element(&root, InsertPos::FirstChild, "a").unwrap();
        let d = s.insert_element(&root, InsertPos::LastChild, "d").unwrap();
        let c = s
            .insert_element(&root, InsertPos::Before(d.clone()), "c")
            .unwrap();
        let e = s
            .insert_element(&root, InsertPos::After(d.clone()), "e")
            .unwrap();
        let names: Vec<_> = s
            .element_children(&root)
            .iter()
            .map(|c| s.name_of(c).unwrap())
            .collect();
        assert_eq!(names, ["a", "b", "c", "d", "e"]);
        assert!(a < b && b < c && c < d && d < e);
        // Before/After with a non-child is rejected.
        let err = s.insert_element(&a, InsertPos::Before(d), "x");
        assert!(matches!(err, Err(NodeError::NotAChild(_))));
    }

    #[test]
    fn first_child_insert_respects_attribute_root() {
        let s = store();
        let root = s.create_root("r").unwrap();
        s.set_attribute(&root, "id", "r1").unwrap();
        let x = s.insert_element(&root, InsertPos::FirstChild, "x").unwrap();
        // Attribute root still sorts first.
        let kids = s.children(&root);
        assert_eq!(s.get(&kids[0]).unwrap().kind(), NodeKind::AttributeRoot);
        assert_eq!(kids[1], x);
    }

    #[test]
    fn id_attribute_value_update_moves_index_entry() {
        let (s, book) = sample();
        let attr = s.attribute_node(&book, "id").unwrap();
        s.update_content(&attr, "b99").unwrap();
        assert_eq!(s.element_by_id("b0"), None);
        assert_eq!(s.element_by_id("b99"), Some(book));
    }

    #[test]
    fn absent_index_probes_cost_zero_page_reads_with_filters_on() {
        let (s, book) = sample();
        // Force the names/values into the vocabulary so the probes reach
        // the filter (an unknown name short-circuits at the vocabulary).
        s.vocab().intern("phantom");
        let reads_before = s.stats().page_reads();
        assert!(s.elements_named("phantom").is_empty());
        assert_eq!(s.element_by_id("no-such-id"), None);
        assert_eq!(
            s.stats().page_reads(),
            reads_before,
            "absent probes must skip the B*-tree descent entirely"
        );
        assert_eq!(s.stats().filter_probes(), 2);
        assert_eq!(s.stats().filter_negatives(), 2);
        // Present probes pass the filter and still find their targets.
        assert_eq!(s.elements_named("book"), vec![book.clone()]);
        assert_eq!(s.element_by_id("b0"), Some(book));
        assert_eq!(s.stats().filter_probes(), 4);
        assert_eq!(s.stats().filter_negatives(), 2);
    }

    #[test]
    fn filters_stay_coherent_under_rename_delete_churn() {
        let s = store();
        let root = s.create_root("r").unwrap();
        for i in 0..50 {
            let e = s.insert_element(&root, InsertPos::LastChild, "old").unwrap();
            s.set_attribute(&e, "id", &format!("k{i}")).unwrap();
        }
        // Rename every element: "old" must become filter-absent (last
        // refcount dropped), "new" filter-present.
        for e in s.elements_named("old") {
            s.rename_element(&e, "new").unwrap();
        }
        let reads = s.stats().page_reads();
        assert!(s.elements_named("old").is_empty());
        assert_eq!(s.stats().page_reads(), reads, "renamed-away name filtered");
        assert_eq!(s.elements_named("new").len(), 50);
        // Delete every subtree: ids drain from filter and index alike.
        for e in s.elements_named("new") {
            s.delete_subtree(&e).unwrap();
        }
        let reads = s.stats().page_reads();
        assert_eq!(s.element_by_id("k7"), None);
        assert!(s.elements_named("new").is_empty());
        assert_eq!(s.stats().page_reads(), reads, "deleted keys filtered");
        assert!(s.verify_indexes().is_empty());
    }

    #[test]
    fn filters_off_is_equivalent_just_slower() {
        let on = sample().0;
        let off = {
            let s = DocStore::new(DocStoreConfig {
                index_filters: false,
                ..DocStoreConfig::default()
            });
            let bib = s.create_root("bib").unwrap();
            let topics = s.insert_element(&bib, InsertPos::LastChild, "topics").unwrap();
            let topic = s.insert_element(&topics, InsertPos::LastChild, "topic").unwrap();
            s.set_attribute(&topic, "id", "t0").unwrap();
            let book = s.insert_element(&topic, InsertPos::LastChild, "book").unwrap();
            s.set_attribute(&book, "id", "b0").unwrap();
            s.set_attribute(&book, "year", "2006").unwrap();
            let title = s.insert_element(&book, InsertPos::LastChild, "title").unwrap();
            s.insert_text(&title, InsertPos::LastChild, "Transaction Processing").unwrap();
            let author = s.insert_element(&book, InsertPos::LastChild, "author").unwrap();
            s.insert_text(&author, InsertPos::LastChild, "Gray").unwrap();
            s
        };
        off.vocab().intern("phantom");
        on.vocab().intern("phantom");
        for name in ["bib", "book", "title", "phantom"] {
            assert_eq!(on.elements_named(name), off.elements_named(name));
        }
        for id in ["t0", "b0", "nope"] {
            assert_eq!(on.element_by_id(id), off.element_by_id(id));
        }
        assert_eq!(off.stats().filter_probes(), 0, "filters off: no probes");
        assert!(on.stats().filter_probes() > 0);
    }

    #[test]
    fn occupancy_matches_paper_claim_after_document_order_build() {
        // §3.1: "a very high degree of storage occupancy (> 96%) for DOM
        // trees is achieved" — document-order loading with B*-tree
        // append-splits.
        let s = store();
        let root = s.create_root("r").unwrap();
        for i in 0..2000 {
            let e = s.insert_element(&root, InsertPos::LastChild, "item").unwrap();
            s.set_attribute(&e, "id", &format!("i{i}")).unwrap();
            s.insert_text(&e, InsertPos::LastChild, "some text content here")
                .unwrap();
        }
        let rep = s.occupancy();
        assert!(rep.occupancy() > 0.9, "occupancy {:.3}", rep.occupancy());
    }
}
