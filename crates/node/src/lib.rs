//! # xtc-node — the taDOM storage model and node manager
//!
//! Implements §3.1 of *Contest of XML Lock Protocols* (VLDB 2006): XML
//! documents are stored as **taDOM trees**, a slight internal extension of
//! DOM trees that the lock manager exploits:
//!
//! * attributes are not attached directly to their element — a separate
//!   **attribute root** connects the attribute nodes to the element,
//! * the content of attribute and text nodes lives in dedicated **string
//!   nodes**, so nodes can be accessed independently of their value.
//!
//! Five node kinds result: element, attribute root, attribute, text, and
//! string. The extension is invisible through the DOM API (`xtc-core`
//! hides it); it exists so that, e.g., reading a text node's *presence*
//! does not conflict with a concurrent update of its *content*.
//!
//! The [`DocStore`] node manager persists a document in a single B\*-tree
//! (`xtc-storage`) keyed by encoded SPLIDs, maintains the element index
//! and the ID-attribute index (Figure 6), and offers navigational and IUD
//! primitives. It performs **no locking** — transactional isolation is
//! layered on top by `xtc-core` + `xtc-lock`.

#![warn(missing_docs)]

mod record;
mod store;
mod xml;

pub use record::{NodeData, NodeKind, RecordError};
pub use store::{AttrPlan, DocStore, DocStoreConfig, InsertPos, NodeError};
pub use xml::{parse_into, serialize_subtree, XmlError};
// Buffer-pool configuration and reporting types, re-exported so callers
// configuring a `DocStoreConfig` (eviction policy, file backend) or
// reading `DocStore::pool_stats` don't need a direct `xtc-storage` dep.
pub use xtc_storage::{EvictPolicy, PageBackendConfig, PoolStats};
