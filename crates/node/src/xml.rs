//! Minimal XML parsing and serialization for loading documents into a
//! [`DocStore`] and dumping subtrees back out.
//!
//! Supports the subset the experiments need: elements, attributes,
//! character data with the five predefined entities, comments (skipped),
//! processing instructions and doctype (skipped). No namespaces, CDATA,
//! or DTD validation — the benchmark documents are generated, and the
//! parser exists for the examples and tests.

use crate::store::{DocStore, InsertPos, NodeError};
use crate::record::NodeData;
use xtc_splid::SplId;

/// XML parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Unexpected end of input.
    UnexpectedEof,
    /// Malformed markup at byte offset.
    Malformed(usize, &'static str),
    /// Mismatched end tag.
    TagMismatch {
        /// The open element's name.
        expected: String,
        /// The end tag actually found.
        found: String,
    },
    /// Document has content outside a single root element.
    NotSingleRooted,
    /// Node-manager error while building.
    Node(NodeError),
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XmlError::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlError::Malformed(at, what) => write!(f, "malformed XML at byte {at}: {what}"),
            XmlError::TagMismatch { expected, found } => {
                write!(f, "end tag </{found}> does not match <{expected}>")
            }
            XmlError::NotSingleRooted => write!(f, "document must have a single root element"),
            XmlError::Node(e) => write!(f, "node manager error: {e}"),
        }
    }
}

impl std::error::Error for XmlError {}

impl From<NodeError> for XmlError {
    fn from(e: NodeError) -> Self {
        XmlError::Node(e)
    }
}

/// Parses an XML document into an empty [`DocStore`]; returns the root
/// element's SPLID.
pub fn parse_into(store: &DocStore, input: &str) -> Result<SplId, XmlError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_misc();
    let root = p.parse_element(store, None)?;
    p.skip_misc();
    if p.pos < p.bytes.len() {
        return Err(XmlError::NotSingleRooted);
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, comments, PIs, and doctype between markup.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_until("-->");
            } else if self.starts_with("<?") {
                self.skip_until("?>");
            } else if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                self.skip_until(">");
            } else {
                return;
            }
        }
    }

    fn skip_until(&mut self, end: &str) {
        while self.pos < self.bytes.len() && !self.starts_with(end) {
            self.pos += 1;
        }
        self.pos = (self.pos + end.len()).min(self.bytes.len());
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XmlError::Malformed(start, "expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn expect(&mut self, c: u8, what: &'static str) -> Result<(), XmlError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else if self.peek().is_none() {
            Err(XmlError::UnexpectedEof)
        } else {
            Err(XmlError::Malformed(self.pos, what))
        }
    }

    fn parse_element(
        &mut self,
        store: &DocStore,
        parent: Option<&SplId>,
    ) -> Result<SplId, XmlError> {
        self.expect(b'<', "expected '<'")?;
        let name = self.read_name()?;
        let elem = match parent {
            None => store.create_root(&name)?,
            Some(p) => store.insert_element(p, InsertPos::LastChild, &name)?,
        };
        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>', "expected '>' after '/'")?;
                    return Ok(elem);
                }
                Some(_) => {
                    let aname = self.read_name()?;
                    self.skip_ws();
                    self.expect(b'=', "expected '=' in attribute")?;
                    self.skip_ws();
                    let quote = self.peek().ok_or(XmlError::UnexpectedEof)?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(XmlError::Malformed(self.pos, "expected quoted value"));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().map(|c| c != quote).unwrap_or(false) {
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.expect(quote, "unterminated attribute value")?;
                    store.set_attribute(&elem, &aname, &unescape(&raw))?;
                }
                None => return Err(XmlError::UnexpectedEof),
            }
        }
        // Content.
        loop {
            if self.starts_with("<!--") {
                self.skip_until("-->");
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let end = self.read_name()?;
                if end != name {
                    return Err(XmlError::TagMismatch {
                        expected: name,
                        found: end,
                    });
                }
                self.skip_ws();
                self.expect(b'>', "expected '>' in end tag")?;
                return Ok(elem);
            }
            match self.peek() {
                Some(b'<') => {
                    self.parse_element(store, Some(&elem))?;
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().map(|c| c != b'<').unwrap_or(false) {
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    let text = unescape(&raw);
                    if !text.trim().is_empty() {
                        store.insert_text(&elem, InsertPos::LastChild, text.trim())?;
                    }
                }
                None => return Err(XmlError::UnexpectedEof),
            }
        }
    }
}

fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let (rep, len) = if rest.starts_with("&lt;") {
            ('<', 4)
        } else if rest.starts_with("&gt;") {
            ('>', 4)
        } else if rest.starts_with("&amp;") {
            ('&', 5)
        } else if rest.starts_with("&quot;") {
            ('"', 6)
        } else if rest.starts_with("&apos;") {
            ('\'', 6)
        } else {
            ('&', 1)
        };
        out.push(rep);
        rest = &rest[len..];
    }
    out.push_str(rest);
    out
}

fn escape(s: &str, attr: bool) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if attr => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Serializes the subtree rooted at `id` back to XML text.
pub fn serialize_subtree(store: &DocStore, id: &SplId) -> String {
    let mut out = String::new();
    write_node(store, id, &mut out);
    out
}

fn write_node(store: &DocStore, id: &SplId, out: &mut String) {
    match store.get(id) {
        Some(NodeData::Element { .. }) => {
            let name = store.name_of(id).unwrap_or_default();
            out.push('<');
            out.push_str(&name);
            for (attr, voc) in store.attributes(id) {
                let aname = store.vocab().resolve(voc).unwrap_or_default();
                let val = store.text_of(&attr).unwrap_or_default();
                out.push(' ');
                out.push_str(&aname);
                out.push_str("=\"");
                out.push_str(&escape(&val, true));
                out.push('"');
            }
            let kids: Vec<SplId> = store
                .children(id)
                .into_iter()
                .filter(|c| {
                    !matches!(
                        store.get(c),
                        Some(NodeData::AttributeRoot) | None
                    )
                })
                .collect();
            if kids.is_empty() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            for k in kids {
                write_node(store, &k, out);
            }
            out.push_str("</");
            out.push_str(&name);
            out.push('>');
        }
        Some(NodeData::Text) => {
            out.push_str(&escape(&store.text_of(id).unwrap_or_default(), false));
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::DocStoreConfig;

    fn store() -> DocStore {
        DocStore::new(DocStoreConfig::default())
    }

    #[test]
    fn parse_and_serialize_round_trip() {
        let s = store();
        let xml = r#"<bib><book id="b1" year="2006"><title>Locks &amp; Trees</title><author>Haustein</author></book><book id="b2"><title>Empty</title></book></bib>"#;
        let root = parse_into(&s, xml).unwrap();
        assert_eq!(s.name_of(&root).as_deref(), Some("bib"));
        assert_eq!(s.elements_named("book").len(), 2);
        let b1 = s.element_by_id("b1").unwrap();
        assert_eq!(s.attribute_value(&b1, "year").as_deref(), Some("2006"));
        let out = serialize_subtree(&s, &root);
        assert_eq!(out, xml);
    }

    #[test]
    fn comments_pis_doctype_skipped() {
        let s = store();
        let xml = "<?xml version=\"1.0\"?>\n<!DOCTYPE bib>\n<!-- hi -->\n<bib><!-- inner --><x/></bib>";
        let root = parse_into(&s, xml).unwrap();
        assert_eq!(s.element_children(&root).len(), 1);
    }

    #[test]
    fn mismatched_tags_rejected() {
        let s = store();
        assert!(matches!(
            parse_into(&s, "<a><b></a></b>"),
            Err(XmlError::TagMismatch { .. })
        ));
    }

    #[test]
    fn self_closing_and_entities() {
        let s = store();
        let root = parse_into(&s, r#"<r a="x &lt; y"><empty/>t &gt; u</r>"#).unwrap();
        assert_eq!(s.attribute_value(&root, "a").as_deref(), Some("x < y"));
        let text = s
            .children(&root)
            .into_iter()
            .find(|c| matches!(s.get(c), Some(NodeData::Text)))
            .unwrap();
        assert_eq!(s.text_of(&text).as_deref(), Some("t > u"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let s = store();
        assert_eq!(parse_into(&s, "<a/><b/>"), Err(XmlError::NotSingleRooted));
    }

    #[test]
    fn eof_detected() {
        let s = store();
        assert!(matches!(parse_into(&s, "<a><b>"), Err(XmlError::UnexpectedEof)));
    }
}
