//! On-page node records: the byte representation of taDOM nodes stored as
//! B\*-tree values.
//!
//! Layout: `[kind u8][payload]` where the payload is
//! * element / attribute: the 2-byte vocabulary surrogate of the name,
//! * string: the raw UTF-8 content bytes,
//! * attribute root / text: empty.

use std::fmt;
use xtc_storage::VocId;

/// The five taDOM node kinds (§3.1, Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An element node.
    Element,
    /// The virtual root connecting an element to its attribute nodes.
    AttributeRoot,
    /// An attribute node (its value lives in a string child).
    Attribute,
    /// A text node (its content lives in a string child).
    Text,
    /// A string node holding actual content bytes.
    String,
}

/// Decoded node record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeData {
    /// Element with its interned name.
    Element {
        /// Vocabulary surrogate of the tag name.
        name: VocId,
    },
    /// Attribute root (no payload).
    AttributeRoot,
    /// Attribute with its interned name.
    Attribute {
        /// Vocabulary surrogate of the attribute name.
        name: VocId,
    },
    /// Text node (no payload).
    Text,
    /// String node with its content.
    String {
        /// Raw UTF-8 content bytes.
        value: Vec<u8>,
    },
}

impl NodeData {
    /// The record's kind tag.
    pub fn kind(&self) -> NodeKind {
        match self {
            NodeData::Element { .. } => NodeKind::Element,
            NodeData::AttributeRoot => NodeKind::AttributeRoot,
            NodeData::Attribute { .. } => NodeKind::Attribute,
            NodeData::Text => NodeKind::Text,
            NodeData::String { .. } => NodeKind::String,
        }
    }

    /// The interned name for element/attribute records.
    pub fn name(&self) -> Option<VocId> {
        match self {
            NodeData::Element { name } | NodeData::Attribute { name } => Some(*name),
            _ => None,
        }
    }

    /// Serializes to the on-page byte form.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            NodeData::Element { name } => {
                let mut v = Vec::with_capacity(3);
                v.push(1);
                v.extend_from_slice(&name.to_bytes());
                v
            }
            NodeData::AttributeRoot => vec![2],
            NodeData::Attribute { name } => {
                let mut v = Vec::with_capacity(3);
                v.push(3);
                v.extend_from_slice(&name.to_bytes());
                v
            }
            NodeData::Text => vec![4],
            NodeData::String { value } => {
                let mut v = Vec::with_capacity(1 + value.len());
                v.push(5);
                v.extend_from_slice(value);
                v
            }
        }
    }

    /// Parses the on-page byte form.
    pub fn decode(bytes: &[u8]) -> Result<NodeData, RecordError> {
        let (&kind, payload) = bytes.split_first().ok_or(RecordError::Empty)?;
        match kind {
            1 | 3 => {
                let name: [u8; 2] = payload
                    .try_into()
                    .map_err(|_| RecordError::BadPayload(kind))?;
                let name = VocId::from_bytes(name);
                Ok(if kind == 1 {
                    NodeData::Element { name }
                } else {
                    NodeData::Attribute { name }
                })
            }
            2 => Ok(NodeData::AttributeRoot),
            4 => Ok(NodeData::Text),
            5 => Ok(NodeData::String {
                value: payload.to_vec(),
            }),
            k => Err(RecordError::UnknownKind(k)),
        }
    }
}

/// Errors decoding a node record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// Zero-length record.
    Empty,
    /// Unknown kind tag.
    UnknownKind(u8),
    /// Payload length mismatch for the kind.
    BadPayload(u8),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Empty => write!(f, "empty node record"),
            RecordError::UnknownKind(k) => write!(f, "unknown node kind {k}"),
            RecordError::BadPayload(k) => write!(f, "bad payload for node kind {k}"),
        }
    }
}

impl std::error::Error for RecordError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_kinds() {
        let records = [
            NodeData::Element { name: VocId(7) },
            NodeData::AttributeRoot,
            NodeData::Attribute { name: VocId(300) },
            NodeData::Text,
            NodeData::String {
                value: b"hello world".to_vec(),
            },
            NodeData::String { value: Vec::new() },
        ];
        for r in &records {
            assert_eq!(&NodeData::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn kinds_and_names() {
        assert_eq!(
            NodeData::Element { name: VocId(1) }.kind(),
            NodeKind::Element
        );
        assert_eq!(
            NodeData::Attribute { name: VocId(2) }.name(),
            Some(VocId(2))
        );
        assert_eq!(NodeData::Text.name(), None);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(NodeData::decode(&[]), Err(RecordError::Empty));
        assert_eq!(NodeData::decode(&[9]), Err(RecordError::UnknownKind(9)));
        assert_eq!(NodeData::decode(&[1, 0]), Err(RecordError::BadPayload(1)));
        assert_eq!(
            NodeData::decode(&[3, 0, 0, 0]),
            Err(RecordError::BadPayload(3))
        );
    }
}
