//! Property test: the B\*-tree-backed node manager behaves like a plain
//! in-memory DOM model under arbitrary operation sequences.

use proptest::prelude::*;
use std::collections::BTreeMap;
use xtc_node::{DocStore, DocStoreConfig, InsertPos, NodeData};
use xtc_splid::SplId;

/// The reference model: a simple ordered tree of elements with text and
/// attributes.
#[derive(Debug, Clone, Default)]
struct Model {
    /// element → ordered element children
    children: BTreeMap<String, Vec<String>>,
    /// element → name
    names: BTreeMap<String, String>,
    /// element → ordered text contents (direct text children)
    texts: BTreeMap<String, Vec<String>>,
    /// element → attributes
    attrs: BTreeMap<String, BTreeMap<String, String>>,
}

#[derive(Debug, Clone)]
enum Op {
    InsertElement(u8, u8),
    InsertTextNode(u8, String),
    SetAttribute(u8, u8, String),
    Rename(u8, u8),
    Delete(u8),
}

const NAMES: [&str; 5] = ["n0", "n1", "n2", "n3", "n4"];

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0u8..32, 0u8..5).prop_map(|(t, n)| Op::InsertElement(t, n)),
            2 => (0u8..32, "[a-z]{0,6}").prop_map(|(t, s)| Op::InsertTextNode(t, s)),
            2 => (0u8..32, 0u8..5, "[a-z]{1,5}").prop_map(|(t, n, v)| Op::SetAttribute(t, n, v)),
            1 => (0u8..32, 0u8..5).prop_map(|(t, n)| Op::Rename(t, n)),
            1 => (0u8..32).prop_map(Op::Delete),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn store_matches_model(ops in arb_ops()) {
        let store = DocStore::new(DocStoreConfig { page_size: 1024, ..DocStoreConfig::default() });
        let root = store.create_root("root").unwrap();
        let mut model = Model::default();
        let rid = root.to_string();
        model.names.insert(rid.clone(), "root".into());
        model.children.insert(rid.clone(), vec![]);
        model.texts.insert(rid.clone(), vec![]);
        model.attrs.insert(rid, BTreeMap::new());
        let mut live: Vec<SplId> = vec![root];

        for op in ops {
            match op {
                Op::InsertElement(t, n) => {
                    let parent = live[t as usize % live.len()].clone();
                    let e = store
                        .insert_element(&parent, InsertPos::LastChild, NAMES[n as usize])
                        .unwrap();
                    let id = e.to_string();
                    model.children.get_mut(&parent.to_string()).unwrap().push(id.clone());
                    model.names.insert(id.clone(), NAMES[n as usize].into());
                    model.children.insert(id.clone(), vec![]);
                    model.texts.insert(id.clone(), vec![]);
                    model.attrs.insert(id, BTreeMap::new());
                    live.push(e);
                }
                Op::InsertTextNode(t, s) => {
                    let parent = live[t as usize % live.len()].clone();
                    store.insert_text(&parent, InsertPos::LastChild, &s).unwrap();
                    model.texts.get_mut(&parent.to_string()).unwrap().push(s);
                }
                Op::SetAttribute(t, n, v) => {
                    let elem = live[t as usize % live.len()].clone();
                    store.set_attribute(&elem, NAMES[n as usize], &v).unwrap();
                    model
                        .attrs
                        .get_mut(&elem.to_string())
                        .unwrap()
                        .insert(NAMES[n as usize].into(), v);
                }
                Op::Rename(t, n) => {
                    let elem = live[t as usize % live.len()].clone();
                    if elem.is_root() {
                        continue;
                    }
                    store.rename_element(&elem, NAMES[n as usize]).unwrap();
                    model.names.insert(elem.to_string(), NAMES[n as usize].into());
                }
                Op::Delete(t) => {
                    let elem = live[t as usize % live.len()].clone();
                    if elem.is_root() {
                        continue;
                    }
                    store.delete_subtree(&elem).unwrap();
                    // Remove from the model recursively.
                    let doomed: Vec<SplId> = live
                        .iter()
                        .filter(|x| **x == elem || elem.is_ancestor_of(x))
                        .cloned()
                        .collect();
                    for d in &doomed {
                        let id = d.to_string();
                        model.names.remove(&id);
                        model.children.remove(&id);
                        model.texts.remove(&id);
                        model.attrs.remove(&id);
                    }
                    if let Some(parent) = elem.parent() {
                        if let Some(kids) = model.children.get_mut(&parent.to_string()) {
                            kids.retain(|k| *k != elem.to_string());
                        }
                    }
                    live.retain(|x| !(elem == *x || elem.is_ancestor_of(x)));
                }
            }
        }

        // Full structural comparison.
        for e in &live {
            let id = e.to_string();
            let got_name = store.name_of(e);
            prop_assert_eq!(
                got_name.as_deref(),
                model.names.get(&id).map(|s| s.as_str()),
                "name of {}", id
            );
            let got_children: Vec<String> = store
                .element_children(e)
                .iter()
                .map(|c| c.to_string())
                .collect();
            prop_assert_eq!(&got_children, model.children.get(&id).unwrap(), "children of {}", id);
            let got_texts: Vec<String> = store
                .children(e)
                .into_iter()
                .filter(|c| matches!(store.get(c), Some(NodeData::Text)))
                .map(|c| store.text_of(&c).unwrap())
                .collect();
            prop_assert_eq!(&got_texts, model.texts.get(&id).unwrap(), "texts of {}", id);
            let got_attrs: BTreeMap<String, String> = store
                .attributes(e)
                .into_iter()
                .map(|(a, voc)| {
                    (
                        store.vocab().resolve(voc).unwrap(),
                        store.text_of(&a).unwrap(),
                    )
                })
                .collect();
            prop_assert_eq!(&got_attrs, model.attrs.get(&id).unwrap(), "attrs of {}", id);
        }
        // Node count sanity: elements + attr roots + attrs + texts + strings.
        let elems = model.names.len();
        let attrs: usize = model.attrs.values().map(|a| a.len()).sum();
        let attr_roots = model.attrs.values().filter(|a| !a.is_empty()).count();
        let texts: usize = model.texts.values().map(|t| t.len()).sum();
        prop_assert_eq!(
            store.node_count(),
            elems + attr_roots + 2 * attrs + 2 * texts
        );
    }
}
